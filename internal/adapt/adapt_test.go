package adapt

import (
	"strings"
	"sync"
	"testing"
	"time"

	"ramsis/internal/core"
	"ramsis/internal/dist"
	"ramsis/internal/profile"
	"ramsis/internal/telemetry"
)

// adaptBase is a small, fast generation problem (3-model ablation set) so
// adapter tests solve real MDPs in milliseconds.
func adaptBase() core.Config {
	return core.Config{
		Models:   profile.AblationImageSet(),
		SLO:      0.150,
		Workers:  4,
		Arrival:  dist.NewPoisson(20), // replaced per bucket
		D:        20,
		MaxQueue: 16,
	}
}

func initialPolicy(t *testing.T, load float64) *core.Policy {
	t.Helper()
	cfg := adaptBase()
	cfg.Arrival = dist.NewPoisson(load)
	pol, err := core.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return pol
}

func newAdapter(t *testing.T, cfg Config) *Adapter {
	t.Helper()
	if cfg.Base.Workers == 0 {
		cfg.Base = adaptBase()
	}
	a, err := New(cfg, initialPolicy(t, 20))
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAdapterDriftSolvesThenCacheHitsOnReturn(t *testing.T) {
	reg := telemetry.NewRegistry()
	a := newAdapter(t, Config{Band: 0.2, Dwell: 1, BucketSize: 20, Telemetry: reg})
	if got := a.ActiveBucket(); got != 20 {
		t.Fatalf("initial bucket %v, want 20", got)
	}

	// Sustained step 20 -> 120 QPS: confirmed after the 1 s dwell, solved
	// once (cache miss), hot-swapped.
	a.Observe(0, 120)
	a.Observe(0.5, 120)
	if s := a.Stats(); s.Swaps != 0 {
		t.Fatalf("swapped before dwell elapsed: %+v", s)
	}
	a.Observe(1.0, 120)
	s := a.Stats()
	if s.Resolves != 1 || s.CacheMisses != 1 || s.Swaps != 1 || s.ActiveBucket != 120 {
		t.Fatalf("after step up: %+v", s)
	}
	if pol := a.PolicyFor(120); pol == nil || pol.Load != 120 {
		t.Fatalf("PolicyFor(120) = %+v, want the freshly solved 120 policy", pol)
	}
	if n := len(a.Current().Policies()); n != 2 {
		t.Fatalf("ladder has %d policies, want 2", n)
	}

	// Step back to the original rate: the initial policy is cached, so the
	// swap is a lookup — no new solve.
	a.Observe(10, 20)
	a.Observe(11, 20)
	s = a.Stats()
	if s.Resolves != 1 {
		t.Errorf("return to original rate re-solved: %+v", s)
	}
	if s.CacheHits != 1 || s.Swaps != 2 || s.ActiveBucket != 20 {
		t.Fatalf("after step back: %+v", s)
	}

	// Telemetry mirrors the counters.
	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"ramsis_adapt_resolves_total 1",
		"ramsis_adapt_cache_hits_total 1",
		"ramsis_adapt_cache_misses_total 1",
		"ramsis_adapt_swaps_total 2",
		"ramsis_adapt_rate_bucket 20",
		// The one resolve warm-started from the cached initial policy.
		"ramsis_adapt_warm_starts_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("telemetry missing %q", want)
		}
	}
}

func TestAdapterOscillationNeverResolves(t *testing.T) {
	a := newAdapter(t, Config{Band: 0.2, Dwell: 1, BucketSize: 20})
	// Bursts shorter than the dwell, always returning to band: the
	// hysteresis must suppress every re-solve.
	for i := 0; i < 20; i++ {
		base := float64(i)
		a.Observe(base, 120)
		a.Observe(base+0.5, 120)
		a.Observe(base+0.8, 20)
	}
	if s := a.Stats(); s.Resolves != 0 || s.Swaps != 0 || s.CacheHits != 0 {
		t.Fatalf("oscillating rate triggered adaptation: %+v", s)
	}
}

func TestAdapterSubBucketDriftIsFree(t *testing.T) {
	// Out of the hysteresis band but within the active rate bucket: the
	// active policy already covers the rate, so no solve and no swap.
	a := newAdapter(t, Config{Band: 0.1, Dwell: 1, BucketSize: 100})
	a.Observe(0, 28)
	a.Observe(1, 28) // bucketOf(28, 100) = 100 = active bucket
	if s := a.Stats(); s.Resolves != 0 || s.Swaps != 0 || s.CacheMisses != 0 {
		t.Fatalf("sub-bucket drift adapted: %+v", s)
	}
	// The detector recentered, so the new rate does not keep firing.
	a.Observe(2, 28)
	a.Observe(50, 28)
	if s := a.Stats(); s.Resolves != 0 || s.Swaps != 0 {
		t.Fatalf("recentered rate kept firing: %+v", s)
	}
}

func TestAdapterDefaultBucketSeesSmallRateDrift(t *testing.T) {
	// Regression: with the bucket size left to default, a small deployment
	// (20 QPS) drifting well outside the band must still re-solve. A fixed
	// coarse default (e.g. the 100-QPS on-demand rung) aliases every rate
	// below 150 QPS into one bucket, so the sub-bucket short-circuit
	// swallowed genuine drift forever.
	a := newAdapter(t, Config{Band: 0.2, Dwell: 1})
	if got := a.ActiveBucket(); got != 20 {
		t.Fatalf("initial bucket %v, want 20 (bucket size = band width = 4)", got)
	}
	a.Observe(0, 40)
	a.Observe(1, 40) // 2× the solved-for rate, sustained past the dwell
	s := a.Stats()
	if s.Resolves != 1 || s.Swaps != 1 || s.ActiveBucket != 40 {
		t.Fatalf("default bucket swallowed a 2x drift: %+v", s)
	}
}

func TestAdapterBackgroundResolve(t *testing.T) {
	a := newAdapter(t, Config{Band: 0.2, Dwell: -1, BucketSize: 20, Background: true})
	a.Observe(0, 120) // negative dwell: fires on the first out-of-band reading
	deadline := time.Now().Add(30 * time.Second)
	for a.Stats().Swaps == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("background resolve never swapped: %+v", a.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	if s := a.Stats(); s.Resolves != 1 || s.ActiveBucket != 120 {
		t.Fatalf("after background resolve: %+v", s)
	}
}

func TestAdapterResolveErrorKeepsOldPolicy(t *testing.T) {
	// An unsolvable base (no models) fails generation; the previous policy
	// must stay active and the failure must be counted.
	cfg := Config{Band: 0.2, Dwell: -1, BucketSize: 20}
	cfg.Base = adaptBase()
	a, err := New(cfg, initialPolicy(t, 20))
	if err != nil {
		t.Fatal(err)
	}
	a.cfg.Base.Models = profile.Set{}
	before := a.PolicyFor(20)
	a.Observe(0, 120)
	s := a.Stats()
	if s.ResolveErrors != 1 || s.Swaps != 0 || s.ActiveBucket != 20 {
		t.Fatalf("after failed resolve: %+v", s)
	}
	if a.PolicyFor(20) != before {
		t.Error("failed resolve replaced the active policy")
	}
	// The resolving latch must be released so the next drift retries.
	a.Observe(1, 200)
	if s := a.Stats(); s.ResolveErrors != 2 {
		t.Fatalf("failed resolve latched the adapter: %+v", s)
	}
}

// TestAdapterWarmStartFewerIterations pins the warm-start win: a drift
// re-solve seeds value iteration from the nearest cached bucket's converged
// vector and reaches the same policy in strictly fewer iterations than the
// identical problem solved cold from zeros.
func TestAdapterWarmStartFewerIterations(t *testing.T) {
	// Cold reference: the 120-QPS bucket solved from zeros.
	cfg := adaptBase()
	cfg.Arrival = dist.NewPoisson(120)
	cold, err := core.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}

	a := newAdapter(t, Config{Band: 0.2, Dwell: -1, BucketSize: 20})
	a.Observe(0, 120) // fires immediately (negative dwell), warm-starts off the cached 20-QPS policy
	s := a.Stats()
	if s.Resolves != 1 || s.WarmStarts != 1 {
		t.Fatalf("after drift: %+v, want 1 resolve and 1 warm start", s)
	}
	if s.LastResolveIterations == 0 {
		t.Fatal("LastResolveIterations not recorded")
	}
	if s.LastResolveIterations >= uint64(cold.Iterations) {
		t.Errorf("warm-started resolve took %d iterations, cold solve %d — want strictly fewer",
			s.LastResolveIterations, cold.Iterations)
	}

	// Same fixed point: the warm-started policy decides identically to the
	// cold one everywhere.
	warm := a.PolicyFor(120)
	if warm.Load != 120 {
		t.Fatalf("PolicyFor(120).Load = %v", warm.Load)
	}
	for s := range cold.Choices {
		if warm.Choices[s] != cold.Choices[s] {
			t.Fatalf("state %d: warm choice %+v != cold %+v", s, warm.Choices[s], cold.Choices[s])
		}
	}
}

// TestCacheNearest pins the donor-selection rule: same SLO and config hash
// only, closest bucket, lower bucket on ties, and no recency bump.
func TestCacheNearest(t *testing.T) {
	pol := func(load float64) *core.Policy { return &core.Policy{Load: load} }
	c := NewCache(8)
	base := Key{SLO: 0.150, ConfigHash: 1}
	for _, b := range []float64{20, 120, 300} {
		k := base
		k.Bucket = b
		c.Put(k, pol(b))
	}
	otherSLO := Key{Bucket: 90, SLO: 0.300, ConfigHash: 1}
	c.Put(otherSLO, pol(90))

	want := base
	want.Bucket = 100
	got, ok := c.Nearest(want)
	if !ok || got.Load != 120 {
		t.Fatalf("Nearest(100) = %v, %v; want the 120 bucket", got, ok)
	}
	// Equidistant 20 vs 120 from 70: the lower bucket wins deterministically.
	want.Bucket = 70
	if got, _ := c.Nearest(want); got.Load != 20 {
		t.Errorf("Nearest(70) = %v, want the 20 bucket on a tie", got.Load)
	}
	// A different SLO never donates even when its bucket is closest.
	miss := Key{Bucket: 90, SLO: 0.500, ConfigHash: 1}
	if _, ok := c.Nearest(miss); ok {
		t.Error("Nearest crossed an SLO boundary")
	}
}

func TestAdapterNilInitial(t *testing.T) {
	if _, err := New(Config{Base: adaptBase()}, nil); err == nil {
		t.Fatal("New accepted a nil initial policy")
	}
}

func TestAdapterConcurrentLookupAndSwap(t *testing.T) {
	// The -race half of the hot-swap contract: lookups race against
	// installs and must always see a complete, non-nil policy.
	a := newAdapter(t, Config{Band: 0.2, Dwell: 1, BucketSize: 20})
	p120 := func() *core.Policy {
		cfg := adaptBase()
		cfg.Arrival = dist.NewPoisson(120)
		pol, err := core.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return pol
	}()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if pol := a.PolicyFor(float64(20 + (i+g)%120)); pol == nil {
					t.Error("lookup observed an empty policy set mid-swap")
					return
				}
			}
		}(g)
	}
	for i := 0; i < 200; i++ {
		if i%2 == 0 {
			a.Install(120, p120)
		} else {
			a.Install(20, a.cache.mustGet(t, a.key(20)))
		}
	}
	close(stop)
	wg.Wait()
	if s := a.Stats(); s.Swaps < 200 {
		t.Fatalf("swaps = %d, want >= 200", s.Swaps)
	}
}

// TestAdapterConcurrentPrioritizedResolve hammers the fast-resolve route
// under -race: background drift re-solves on the prioritized float32 solver
// with aggregation warm starts, racing against lock-free dispatch lookups.
// Every lookup must see a complete policy and every re-solved policy must
// decide like its float64 Jacobi reference.
func TestAdapterConcurrentPrioritizedResolve(t *testing.T) {
	base := adaptBase()
	base.Float32 = true
	base.AggQueue = 4
	a := newAdapter(t, Config{
		Base: base, Band: 0.2, Dwell: -1, BucketSize: 20, Background: true,
	})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if pol := a.PolicyFor(float64(20 + (i+g)%200)); pol == nil {
					t.Error("lookup observed an empty policy set mid-swap")
					return
				}
			}
		}(g)
	}
	rates := []float64{120, 20, 220, 120, 20}
	for i, r := range rates {
		a.Observe(float64(i), r)
		deadline := time.Now().Add(30 * time.Second)
		for a.Stats().Swaps < uint64(i+1) {
			if time.Now().After(deadline) {
				t.Fatalf("swap %d never happened: %+v", i+1, a.Stats())
			}
			time.Sleep(time.Millisecond)
		}
	}
	close(stop)
	wg.Wait()

	// The prioritized float32 re-solve reached the same argmaxes as the
	// pinned float64 Jacobi solve of the same bucket.
	ref := adaptBase()
	ref.Arrival = dist.NewPoisson(220)
	cold, err := core.Generate(ref)
	if err != nil {
		t.Fatal(err)
	}
	warm := a.PolicyFor(220)
	if warm.Load != 220 {
		t.Fatalf("PolicyFor(220).Load = %v", warm.Load)
	}
	for s := range cold.Choices {
		if warm.Choices[s] != cold.Choices[s] {
			t.Fatalf("state %d: prioritized f32 choice %+v != Jacobi f64 %+v",
				s, warm.Choices[s], cold.Choices[s])
		}
	}
}

// mustGet is a test helper: fetch a policy known to be cached.
func (c *Cache) mustGet(t *testing.T, k Key) *core.Policy {
	t.Helper()
	pol, ok := c.Get(k)
	if !ok {
		t.Fatal("expected cached policy missing")
	}
	return pol
}
