package trace

import (
	"math"
	"testing"
)

func TestTwitterTraceCharacteristics(t *testing.T) {
	tr := Twitter()
	if got := tr.Duration(); got != 300 {
		t.Errorf("duration = %v s, want 300 (5 minutes)", got)
	}
	if got := tr.MinQPS(); got != 1617 {
		t.Errorf("min QPS = %v, want 1617", got)
	}
	if got := tr.MaxQPS(); got != 3905 {
		t.Errorf("max QPS = %v, want 3905", got)
	}
	if tr.IntervalSec != 10 {
		t.Errorf("interval = %v s, want 10 (artifact trace format)", tr.IntervalSec)
	}
	// Deterministic.
	tr2 := Twitter()
	for i := range tr.QPS {
		if tr.QPS[i] != tr2.QPS[i] {
			t.Fatalf("Twitter trace not deterministic at interval %d", i)
		}
	}
}

func TestTwitterTraceHasVariation(t *testing.T) {
	tr := Twitter()
	// A diurnal trace must not be flat; require meaningful spread.
	if tr.MaxQPS()/tr.MinQPS() < 2 {
		t.Errorf("trace spread %v-%v too flat", tr.MinQPS(), tr.MaxQPS())
	}
	// Spikes: at least one interval should jump >15%% versus its neighbor.
	jump := false
	for i := 1; i < len(tr.QPS); i++ {
		if tr.QPS[i] > tr.QPS[i-1]*1.15 {
			jump = true
		}
	}
	if !jump {
		t.Error("trace has no load spikes")
	}
}

func TestConstantTrace(t *testing.T) {
	tr := Constant(800, 30)
	if tr.Duration() != 30 {
		t.Errorf("duration = %v, want 30", tr.Duration())
	}
	for _, q := range tr.QPS {
		if q != 800 {
			t.Fatalf("constant trace has load %v", q)
		}
	}
	if tr.MeanQPS() != 800 {
		t.Errorf("mean = %v, want 800", tr.MeanQPS())
	}
}

func TestScaleAndTruncate(t *testing.T) {
	tr := Twitter()
	half := tr.Scale(0.5)
	if got, want := half.MaxQPS(), tr.MaxQPS()/2; math.Abs(got-want) > 1e-9 {
		t.Errorf("scaled max = %v, want %v", got, want)
	}
	short := tr.Truncate(60)
	if short.Duration() != 60 {
		t.Errorf("truncated duration = %v, want 60", short.Duration())
	}
	if short.QPS[0] != tr.QPS[0] {
		t.Error("truncate changed interval loads")
	}
	// Truncating beyond the end is a no-op.
	if got := tr.Truncate(1e6).Duration(); got != tr.Duration() {
		t.Errorf("over-truncate duration = %v, want %v", got, tr.Duration())
	}
}

func TestQPSAt(t *testing.T) {
	tr := Trace{IntervalSec: 10, QPS: []float64{100, 200, 300}}
	cases := []struct {
		t    float64
		want float64
	}{{0, 100}, {9.99, 100}, {10, 200}, {25, 300}, {1000, 300}, {-5, 100}}
	for _, c := range cases {
		if got := tr.QPSAt(c.t); got != c.want {
			t.Errorf("QPSAt(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestPoissonArrivalsMatchLoad(t *testing.T) {
	tr := Constant(2000, 30)
	arr := PoissonArrivals(tr, 1)
	want := 2000.0 * 30
	if math.Abs(float64(len(arr))-want)/want > 0.03 {
		t.Errorf("sampled %d arrivals, want ~%v", len(arr), want)
	}
	// Sorted, in range.
	for i, a := range arr {
		if a < 0 || a >= 30 {
			t.Fatalf("arrival %d at %v outside trace", i, a)
		}
		if i > 0 && a < arr[i-1] {
			t.Fatalf("arrivals not sorted at %d", i)
		}
	}
}

func TestArrivalsDeterministicPerSeed(t *testing.T) {
	tr := Twitter().Truncate(30)
	a := PoissonArrivals(tr, 7)
	b := PoissonArrivals(tr, 7)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs", i)
		}
	}
	c := PoissonArrivals(tr, 8)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical arrivals")
	}
}

func TestTwitterArrivalCountNearPaper(t *testing.T) {
	// The paper samples 554,395 total queries from the 5-minute trace.
	arr := PoissonArrivals(Twitter(), 42)
	mean := Twitter().MeanQPS() * 300
	if math.Abs(float64(len(arr))-mean)/mean > 0.02 {
		t.Errorf("arrivals %d deviate from trace mean %v", len(arr), mean)
	}
	if len(arr) < 450000 || len(arr) > 650000 {
		t.Errorf("total arrivals %d outside the paper's ballpark (~554k)", len(arr))
	}
}

func TestGammaArrivalsLessBursty(t *testing.T) {
	// Erlang(4) inter-arrivals have lower variance than Poisson at the same
	// rate; check the coefficient of variation ordering.
	tr := Constant(1000, 30)
	cv := func(arr []float64) float64 {
		var gaps []float64
		for i := 1; i < len(arr); i++ {
			gaps = append(gaps, arr[i]-arr[i-1])
		}
		m, s := meanStd(gaps)
		return s / m
	}
	p := cv(PoissonArrivals(tr, 3))
	g := cv(GammaArrivals(tr, 3, 4))
	if g >= p {
		t.Errorf("Gamma(4) CV %v not below Poisson CV %v", g, p)
	}
}

func meanStd(xs []float64) (float64, float64) {
	m := 0.0
	for _, x := range xs {
		m += x
	}
	m /= float64(len(xs))
	v := 0.0
	for _, x := range xs {
		v += (x - m) * (x - m)
	}
	return m, math.Sqrt(v / float64(len(xs)))
}

func TestEmptyTrace(t *testing.T) {
	tr := Trace{IntervalSec: 10}
	if tr.Duration() != 0 || tr.MeanQPS() != 0 || tr.QPSAt(5) != 0 {
		t.Error("empty trace should be inert")
	}
	if got := PoissonArrivals(tr, 1); len(got) != 0 {
		t.Errorf("empty trace produced %d arrivals", len(got))
	}
}
