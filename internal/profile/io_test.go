package profile

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestArtifactRoundTrip(t *testing.T) {
	dir := t.TempDir()
	src := TextSet()
	if err := src.ExportArtifact(dir, 200, 0.005, 1); err != nil {
		t.Fatal(err)
	}
	got, err := ImportArtifact(dir, "text")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != src.Len() {
		t.Fatalf("imported %d models, want %d", got.Len(), src.Len())
	}
	for _, want := range src.Profiles {
		p, ok := got.ByName(want.Name)
		if !ok {
			t.Fatalf("model %s missing after round trip", want.Name)
		}
		if p.Accuracy != want.Accuracy {
			t.Errorf("%s accuracy %v != %v", want.Name, p.Accuracy, want.Accuracy)
		}
		if p.MaxBatch() != want.MaxBatch() {
			t.Fatalf("%s batch range %d != %d", want.Name, p.MaxBatch(), want.MaxBatch())
		}
		// p95 of the jittered samples should recover the tabulated p95
		// within sampling noise.
		for _, b := range []int{1, 8, 32} {
			rel := math.Abs(p.BatchLatency(b)-want.BatchLatency(b)) / want.BatchLatency(b)
			if rel > 0.10 {
				t.Errorf("%s batch %d: recovered p95 %v vs original %v", want.Name, b, p.BatchLatency(b), want.BatchLatency(b))
			}
		}
	}
}

func TestImportArtifactErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := ImportArtifact(dir, "x"); err == nil {
		t.Error("missing accuracy map accepted")
	}
	// Accuracy map but a model without latencies -> that model simply is
	// not imported; a model directory without accuracy must fail.
	os.WriteFile(filepath.Join(dir, "accuracy.json"), []byte(`{"known":0.8}`), 0o644)
	os.MkdirAll(filepath.Join(dir, "mystery"), 0o755)
	os.WriteFile(filepath.Join(dir, "mystery", "1.json"), []byte(`[0.01]`), 0o644)
	if _, err := ImportArtifact(dir, "x"); err == nil {
		t.Error("model without accuracy accepted")
	}

	// Missing intermediate batch must fail loudly.
	dir2 := t.TempDir()
	os.WriteFile(filepath.Join(dir2, "accuracy.json"), []byte(`{"m":0.8}`), 0o644)
	os.MkdirAll(filepath.Join(dir2, "m"), 0o755)
	os.WriteFile(filepath.Join(dir2, "m", "1.json"), []byte(`[0.01,0.011]`), 0o644)
	os.WriteFile(filepath.Join(dir2, "m", "3.json"), []byte(`[0.03]`), 0o644)
	if _, err := ImportArtifact(dir2, "x"); err == nil {
		t.Error("gap in batch profiles accepted")
	}

	// Corrupt latency list.
	dir3 := t.TempDir()
	os.WriteFile(filepath.Join(dir3, "accuracy.json"), []byte(`{"m":0.8}`), 0o644)
	os.MkdirAll(filepath.Join(dir3, "m"), 0o755)
	os.WriteFile(filepath.Join(dir3, "m", "1.json"), []byte(`nope`), 0o644)
	if _, err := ImportArtifact(dir3, "x"); err == nil {
		t.Error("corrupt latency list accepted")
	}
}

func TestExportArtifactAccuracyFile(t *testing.T) {
	dir := t.TempDir()
	if err := AblationImageSet().ExportArtifact(dir, 50, 0.01, 2); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "accuracy.json"))
	if err != nil {
		t.Fatal(err)
	}
	var acc map[string]float64
	if err := json.Unmarshal(data, &acc); err != nil {
		t.Fatal(err)
	}
	if len(acc) != 3 {
		t.Errorf("accuracy map has %d entries, want 3", len(acc))
	}
}
