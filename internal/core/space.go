package core

import (
	"math"
	"sort"

	"ramsis/internal/profile"
)

// arrivalAction marks the special action â taken in an empty-queue state
// (§4.3.4): the worker idles until the next query arrives.
const arrivalAction = -1

// actionSpec is one valid MS decision in a state: run Batch queries on
// Models.Profiles[Model]. Satisfies records SLOSatisfied(s, a) — whether the
// action's latency meets the state's slack (§4.1). Model == arrivalAction
// encodes â.
type actionSpec struct {
	Model     int
	Batch     int
	Latency   float64
	Satisfies bool
}

// space is the worker MDP's state space: the slack-time grid T_w plus the
// indexing of states (n, T_j), the empty state, and the full-queue state
// (φ, ∅) of §4.2.3.
type space struct {
	cfg    Config
	models profile.Set // action models (Pareto-pruned unless disabled)
	grid   []float64   // T_w, ascending; grid[0] == 0 (floor bucket)
}

// newSpace builds the state space for a validated config.
func newSpace(cfg Config) *space {
	models := cfg.Models
	if !cfg.NoParetoPruning {
		models = models.ParetoFront()
	}
	sp := &space{cfg: cfg, models: models}
	switch cfg.Disc {
	case FixedLength:
		sp.grid = fldGrid(cfg.SLO, cfg.D)
	case ModelBased:
		sp.grid = mdGrid(models, cfg.SLO, cfg.MaxQueue)
	}
	return sp
}

// fldGrid is the Fixed Length Discretization (§4.2.2):
// {0, SLO/D, 2·SLO/D, ..., SLO}.
func fldGrid(slo float64, d int) []float64 {
	g := make([]float64, d+1)
	for i := range g {
		g[i] = slo * float64(i) / float64(d)
	}
	return g
}

// mdGrid is the Model-based Discretization (§4.2.1): the unique inference
// latencies l_w(m, b) <= SLO over the action models and b <= min(B_w, N_w),
// with a zero floor bucket prepended so slacks below the smallest latency
// (where no action is valid) are representable.
func mdGrid(models profile.Set, slo float64, maxQueue int) []float64 {
	var lats []float64
	for _, p := range models.Profiles {
		maxB := p.MaxBatch()
		if maxB > maxQueue {
			maxB = maxQueue
		}
		for b := 1; b <= maxB; b++ {
			if l := p.BatchLatency(b); l <= slo {
				lats = append(lats, l)
			}
		}
	}
	sort.Float64s(lats)
	grid := []float64{0}
	const eps = 1e-9
	for _, l := range lats {
		if l > grid[len(grid)-1]+eps {
			grid = append(grid, l)
		}
	}
	return grid
}

// Indexing: state 0 is the empty queue; states 1 .. N_w·|T_w| are (n, T_j)
// with n in [1, N_w] and j in [0, |T_w|-1]; the last state is (φ, ∅).

func (sp *space) numStates() int {
	return 2 + sp.cfg.MaxQueue*len(sp.grid)
}

func (sp *space) emptyState() int { return 0 }

func (sp *space) overflowState() int { return 1 + sp.cfg.MaxQueue*len(sp.grid) }

// index returns the state index for (n, T_j) with 1 <= n <= N_w.
func (sp *space) index(n, j int) int {
	return 1 + (n-1)*len(sp.grid) + j
}

// decompose inverts index for non-special states.
func (sp *space) decompose(s int) (n, j int) {
	s--
	return s/len(sp.grid) + 1, s % len(sp.grid)
}

// bucketOf returns the largest j with T_j <= slack (§4.2): the conservative
// discretization that may underestimate but never overestimate real slack.
// Slacks below T_0 = 0 floor to bucket 0.
func (sp *space) bucketOf(slack float64) int {
	j := sort.SearchFloat64s(sp.grid, slack)
	if j < len(sp.grid) && sp.grid[j] == slack {
		return j
	}
	if j == 0 {
		return 0
	}
	return j - 1
}

// stateFor maps an online worker-queue observation to a state index,
// truncating over-long queues to the full-queue state (§4.2.3).
func (sp *space) stateFor(n int, slack float64) int {
	if n <= 0 {
		return sp.emptyState()
	}
	if n > sp.cfg.MaxQueue {
		return sp.overflowState()
	}
	return sp.index(n, sp.bucketOf(slack))
}

// fastestModel returns the index in sp.models of the lowest-latency model,
// the forced choice when no action satisfies the slack (§4.3.1).
func (sp *space) fastestModel() int {
	best, bestLat := 0, math.Inf(1)
	for i, p := range sp.models.Profiles {
		if l := p.BatchLatency(1); l < bestLat {
			best, bestLat = i, l
		}
	}
	return best
}

// actionsFor enumerates the valid actions in state (n, T_j) per §4.3:
// latency-constrained to l_w(m,b) <= T_j, batch-constrained per the batching
// strategy, over the (pruned) model set. When no action satisfies the slack,
// the single forced action (m_min, n) is returned with Satisfies == false
// ("better served late than never", §4.3.1). For the empty state (n == 0)
// the single arrival action is returned.
func (sp *space) actionsFor(n int, slack float64) []actionSpec {
	if n == 0 {
		return []actionSpec{{Model: arrivalAction, Satisfies: true}}
	}
	var acts []actionSpec
	for mi, p := range sp.models.Profiles {
		// Queues beyond the profiled batch range drain in partial batches:
		// b = all queued queries clamped to the model's profiled maximum.
		maxB := min(n, p.MaxBatch())
		switch sp.cfg.Batching {
		case MaximalBatching:
			if l := p.BatchLatency(maxB); l <= slack {
				acts = append(acts, actionSpec{Model: mi, Batch: maxB, Latency: l, Satisfies: true})
			}
		case VariableBatching:
			for b := 1; b <= maxB; b++ {
				if l := p.BatchLatency(b); l <= slack {
					acts = append(acts, actionSpec{Model: mi, Batch: b, Latency: l, Satisfies: true})
				}
			}
		}
	}
	if len(acts) == 0 {
		mi := sp.fastestModel()
		b := min(n, sp.models.Profiles[mi].MaxBatch())
		acts = append(acts, actionSpec{
			Model:   mi,
			Batch:   b,
			Latency: sp.models.Profiles[mi].BatchLatency(b),
		})
	}
	return acts
}

// actionsForState enumerates actions by state index, treating the full-queue
// state as (N_w, 0) per §4.2.3.
func (sp *space) actionsForState(s int) []actionSpec {
	switch s {
	case sp.emptyState():
		return sp.actionsFor(0, 0)
	case sp.overflowState():
		return sp.actionsFor(sp.cfg.MaxQueue, 0)
	}
	n, j := sp.decompose(s)
	return sp.actionsFor(n, sp.grid[j])
}

// reward implements R_a(s, s') = Accuracy(a) · SLOSatisfied(s, a) (§4.1),
// optionally batch-weighted (ablation).
func (sp *space) reward(a actionSpec) float64 {
	if a.Model == arrivalAction || !a.Satisfies {
		return 0
	}
	r := sp.models.Profiles[a.Model].Accuracy
	if sp.cfg.BatchWeightedReward {
		r *= float64(a.Batch)
	}
	return r
}
