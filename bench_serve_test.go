package ramsis

// Data-plane benchmarks: the end-to-end per-query cost of the serving hot
// path, measured in-process over a loopback cluster (real worker HTTP
// dispatch, real telemetry, real admission) with parallel client
// goroutines. The profiled inference latencies are compressed to the
// microsecond range by a large TimeScale so what the numbers capture is the
// serving overhead — enqueue, routing, batching, dispatch, response — not
// the modeled model math. allocs/op here is the steady-state per-query
// allocation count across the whole process (client, frontend, worker),
// the figure the zero-allocation query-path work is gated on (BENCH_9.json
// and the bench-compare CI job).

import (
	"testing"

	"ramsis/internal/profile"
	"ramsis/internal/serve"
	"ramsis/internal/telemetry"
	"ramsis/internal/tenant"
)

// benchTimeScale compresses modeled time so profiled inference latencies
// sleep for microseconds: the benchmark then measures the data plane, not
// the model zoo.
const benchTimeScale = 20000

// benchSelector is a fixed greedy selector (fastest model, batch = queue
// length capped at the profile's max) so the benchmark exercises the
// serving path without coupling to MDP solve behaviour.
func benchSelector(models profile.Set) serve.SelectFunc {
	fastest := models.Fastest()
	maxB := fastest.MaxBatch()
	return func(_, _ float64, n int, _ float64) (string, int) {
		b := n
		if b > maxB {
			b = maxB
		}
		if b < 1 {
			b = 1
		}
		return fastest.Name, b
	}
}

// BenchmarkFrontendQuery measures one client query end to end through a
// single-tenant frontend over two loopback HTTP workers: enqueue, balancer
// pick, batch formation, worker dispatch, telemetry, response.
func BenchmarkFrontendQuery(b *testing.B) {
	models := profile.ImageSet()
	c, err := serve.StartCluster(serve.ClusterConfig{
		Models:    models,
		Workers:   2,
		SLO:       60,
		TimeScale: benchTimeScale,
		Select:    benchSelector(models),
		Seed:      1,
		Telemetry: telemetry.NewRegistry(),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Stop()

	b.SetParallelism(8)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			resp, eerr := c.Frontend.Do("")
			if eerr != nil {
				b.Errorf("enqueue: %v", eerr)
				continue
			}
			if resp.Error != "" {
				b.Errorf("dispatch: %s", resp.Error)
			}
		}
	})
	b.StopTimer()
}

// BenchmarkShardedGatewayQuery measures the same query through the full
// multi-tenant plane: gateway tenant resolution, shard pick, weighted-fair
// admission, shard frontend, worker dispatch. Two shards of one worker
// each; the tenant's contract is deep enough that nothing sheds, so every
// op is a served query.
func BenchmarkShardedGatewayQuery(b *testing.B) {
	models := profile.ImageSet()
	c, err := serve.StartShardedCluster(serve.ShardedConfig{
		Models: models,
		Tenants: []tenant.Tenant{
			{Name: "bench", Class: "interactive", SLOMS: 250, Weight: 1, RateQPS: 50, BurstSec: 10},
		},
		Shards:          2,
		WorkersPerShard: 1,
		TimeScale:       benchTimeScale,
		Seed:            1,
		D:               10,
		QueueSlack:      4,
		ShardBy:         "p2c",
		Telemetry:       telemetry.NewRegistry(),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Stop()

	b.SetParallelism(8)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			resp, eerr := c.Gateway.Do("bench")
			if eerr != nil {
				b.Errorf("route: %v", eerr)
				continue
			}
			if resp.Error != "" {
				b.Errorf("dispatch: %s", resp.Error)
			}
		}
	})
	b.StopTimer()
}
