// Command experiments regenerates the paper's tables and figures:
//
//	experiments --exp all            # every experiment, scaled default
//	experiments --exp fig5 --full    # one experiment at paper scale
//
// Experiments: fig3 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12 table2
// infaas sqf all. (Table 1 is qualitative — see README; Tables 3 and 4 are
// printed together with Figs. 5 and 6.)
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"
	"strings"
	"time"
)

import (
	"ramsis/internal/experiments"
	"ramsis/internal/telemetry"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment id (fig3, fig5, ..., table2, infaas, sqf, all)")
		full       = flag.Bool("full", false, "paper-scale grid (slow)")
		quick      = flag.Bool("quick", false, "minimal grid for smoke runs")
		seed       = flag.Int64("seed", 1, "workload seed")
		policyDir  = flag.String("policy-dir", "", "cache generated policies under this directory")
		resultsDir = flag.String("results-dir", "", "write structured JSON results under this directory")
		plotFlag   = flag.Bool("plot", false, "render ASCII charts alongside the numeric rows")
		parallel   = flag.Int("parallel", 1, "max concurrent simulation runs in the figure sweeps (0 = GOMAXPROCS); results are identical at any setting")
		logLevel   = flag.String("log-level", "info", "log level: debug, info, warn, error")
		logFmt     = flag.String("log-format", "text", "log format: text or json")
	)
	flag.Parse()
	if _, err := telemetry.SetupLogging(*logLevel, *logFmt, "experiments"); err != nil {
		log.Fatal(err)
	}

	if *parallel == 0 {
		*parallel = runtime.GOMAXPROCS(0)
	}
	h := experiments.New(experiments.Options{
		Full: *full, Quick: *quick, Seed: *seed,
		PolicyDir: *policyDir, ResultsDir: *resultsDir, Plot: *plotFlag,
		Parallel: *parallel,
	})
	runners := map[string]func(){
		"fig2":     func() { h.Fig2() },
		"fig3":     func() { h.Fig3() },
		"fig9":     func() { h.Fig9() },
		"table2":   func() { h.Table2() },
		"fig5":     func() { h.Fig5() },
		"fig6":     func() { h.Fig6() },
		"fig7":     func() { h.Fig7() },
		"fig8":     func() { h.Fig8() },
		"fig10":    func() { h.Fig10() },
		"fig11":    func() { h.Fig11() },
		"fig12":    func() { h.Fig12() },
		"infaas":   func() { h.INFaaS() },
		"sqf":      func() { h.SQF() },
		"misspec":  func() { h.Misspec() },
		"scaling":  func() { h.Scaling() },
		"greedy":   func() { h.Greedy() },
		"overload": func() { h.Overload() },
	}
	order := []string{"fig2", "fig3", "fig9", "table2", "fig5", "fig6", "fig7", "fig8", "fig10", "fig11", "fig12", "infaas", "sqf", "misspec", "scaling", "greedy", "overload"}

	ids := []string{*exp}
	if *exp == "all" {
		ids = order
	}
	for _, id := range ids {
		run, ok := runners[strings.ToLower(id)]
		if !ok {
			log.Fatalf("unknown experiment %q (want one of %v)", id, order)
		}
		start := time.Now()
		run()
		fmt.Printf("[%s done in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
