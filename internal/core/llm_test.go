package core

import (
	"testing"
	"time"

	"ramsis/internal/llm"
)

func llmTestConfig() LLMConfig {
	cls := llm.GeneralClass()
	return LLMConfig{
		Models:  llm.BuiltinSet(),
		SLO:     6.0,
		Workers: 2,
		Rate:    10,
		In:      cls.In,
		Out:     cls.Out,
	}
}

func TestGenerateLLMPolicyNonTrivial(t *testing.T) {
	pol, err := GenerateLLM(llmTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if pol.States != pol.Buckets()+2 {
		t.Fatalf("states %d, buckets %d", pol.States, pol.Buckets())
	}
	if !pol.Choices[0].Arrival {
		t.Fatal("state 0 should be the arrival action")
	}
	// The policy must actually select: different load buckets choose
	// different models (accuracy under light load, throughput under heavy).
	seen := map[string]bool{}
	for _, c := range pol.Choices[1:] {
		seen[c.Model] = true
	}
	if len(seen) < 2 {
		t.Fatalf("policy is constant (%v); token-level selection should vary with load", seen)
	}
	// Light load runs the most accurate model; the overflow state cannot —
	// it must downshift toward throughput.
	light := pol.Select(1)
	over := pol.Select(pol.MaxTokens * 2)
	models := pol.Models()
	if light.Model != models.Models[models.MostAccurate()].Name {
		t.Errorf("light-load choice %s, want most accurate %s",
			light.Model, models.Models[models.MostAccurate()].Name)
	}
	if over.Model == models.Models[models.MostAccurate()].Name {
		t.Errorf("overflow state still runs %s; backlog cannot drain within the SLO", over.Model)
	}
	if !(pol.ExpectedAccuracy > 0 && pol.ExpectedAccuracy <= 1) {
		t.Errorf("expected accuracy %v outside (0,1]", pol.ExpectedAccuracy)
	}
	if pol.ExpectedViolation < 0 || pol.ExpectedViolation > 1 {
		t.Errorf("expected violation %v outside [0,1]", pol.ExpectedViolation)
	}
	if pol.Iterations == 0 || pol.Transitions == 0 {
		t.Errorf("missing solve stats: %d iterations, %d transitions", pol.Iterations, pol.Transitions)
	}
}

func TestGenerateLLMSelectMapsLoadsToBuckets(t *testing.T) {
	pol, err := GenerateLLM(llmTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	w := pol.TokenBucket
	if got, want := pol.Select(0), pol.Choices[1]; got != want {
		t.Errorf("Select(0) = %+v, want lightest bucket %+v", got, want)
	}
	if got, want := pol.Select(w), pol.Choices[1]; got != want {
		t.Errorf("Select(%d) = %+v, want bucket 1 %+v", w, got, want)
	}
	if got, want := pol.Select(w+1), pol.Choices[2]; got != want {
		t.Errorf("Select(%d) = %+v, want bucket 2 %+v", w+1, got, want)
	}
	if got, want := pol.Select(1<<30), pol.Choices[len(pol.Choices)-1]; got != want {
		t.Errorf("huge load should clamp to the overflow state")
	}
	for _, c := range pol.Choices[1:] {
		if c.Arrival {
			t.Fatal("non-empty state carries an arrival action")
		}
		if c.Model == "" || c.StepTime <= 0 || c.TokenRate <= 0 {
			t.Fatalf("degenerate choice %+v", c)
		}
		if c.PrefillTokens+c.DecodeTokens < 1 {
			t.Fatalf("choice schedules no tokens: %+v", c)
		}
	}
}

// TestGenerateLLMPrioritizedMatchesValueIteration pins the fast-resolve
// path to the default solver: same fixed point, same greedy policy.
func TestGenerateLLMPrioritizedMatchesValueIteration(t *testing.T) {
	cfg := llmTestConfig()
	vi, err := GenerateLLM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Solver = SolvePrioritized
	pvi, err := GenerateLLM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(vi.Choices) != len(pvi.Choices) {
		t.Fatalf("state count mismatch: %d vs %d", len(vi.Choices), len(pvi.Choices))
	}
	for s := range vi.Choices {
		if vi.Choices[s].Model != pvi.Choices[s].Model {
			t.Errorf("state %d: value iteration picks %s, prioritized picks %s",
				s, vi.Choices[s].Model, pvi.Choices[s].Model)
		}
	}
}

func TestGenerateLLMKVCapOverride(t *testing.T) {
	cfg := llmTestConfig()
	cfg.KVCap = 2048
	pol, err := GenerateLLM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range pol.Models().Models {
		if m.KVCapTokens != 2048 {
			t.Fatalf("model %s KV cap %d, want 2048", m.Name, m.KVCapTokens)
		}
	}
}

func TestGenerateLLMValidation(t *testing.T) {
	cases := map[string]func(*LLMConfig){
		"no-models":  func(c *LLMConfig) { c.Models = llm.Set{} },
		"bad-slo":    func(c *LLMConfig) { c.SLO = 0 },
		"no-workers": func(c *LLMConfig) { c.Workers = 0 },
		"bad-rate":   func(c *LLMConfig) { c.Rate = -1 },
		"nil-in":     func(c *LLMConfig) { c.In = nil },
		"nil-out":    func(c *LLMConfig) { c.Out = nil },
		"bad-bucket": func(c *LLMConfig) { c.TokenBucket = -1 },
		"bad-max":    func(c *LLMConfig) { c.TokenBucket = 512; c.MaxTokens = 100 },
		"bad-gamma":  func(c *LLMConfig) { c.Gamma = 1.5 },
	}
	for name, mutate := range cases {
		cfg := llmTestConfig()
		mutate(&cfg)
		if _, err := GenerateLLM(cfg); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestGenerateLLMTimeout(t *testing.T) {
	cfg := llmTestConfig()
	cfg.Timeout = time.Nanosecond
	if _, err := GenerateLLM(cfg); err != ErrTimeout {
		// A nanosecond deadline can still pass the build on a fast machine;
		// only a non-timeout failure is wrong.
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
	}
}
