// Multiple latency SLOs (§G): per-SLO central queues with workers assigned
// to SLO classes, each running its own RAMSIS policy — an interactive
// 150 ms class and a relaxed 500 ms analytics class sharing one deployment.
//
//	go run ./examples/multislo
package main

import (
	"fmt"
	"log"

	"ramsis"
	"ramsis/internal/multislo"
)

func main() {
	classes := []multislo.Class{
		{Name: "interactive", SLO: 0.150, Workers: 6, Share: 0.6},
		{Name: "analytics", SLO: 0.500, Workers: 4, Share: 0.4},
	}
	system, err := multislo.New(ramsis.ImageModels(), classes, 0)
	if err != nil {
		log.Fatal(err)
	}

	const totalLoad = 300.0
	fmt.Printf("serving %.0f QPS split across %d SLO classes for 30s...\n\n", totalLoad, len(classes))
	results, err := system.Run(totalLoad, 30, 1)
	if err != nil {
		log.Fatal(err)
	}
	for i, c := range classes {
		m := results[c.Name]
		pol, _ := system.ClassPolicy(i, totalLoad)
		fmt.Printf("%-12s SLO %3.0f ms, %d workers, %.0f QPS share\n",
			c.Name, c.SLO*1000, c.Workers, c.Share*totalLoad)
		fmt.Printf("  accuracy %.4f (bound %.4f), violations %.4f%% (bound %.4f%%), %d queries\n\n",
			m.AccuracyPerSatisfiedQuery(), pol.ExpectedAccuracy,
			m.ViolationRate()*100, pol.ExpectedViolation*100, m.Served)
	}
	fmt.Println("the relaxed class exploits its deadline headroom to run the")
	fmt.Println("larger EfficientNets while the interactive class stays snappy.")
}
