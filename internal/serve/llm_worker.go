package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"ramsis/internal/llm"
	"ramsis/internal/sim"
	"ramsis/internal/telemetry"
)

// GenRequest is the LLM worker HTTP API request: generate Decode output
// tokens for a prompt of Prefill tokens.
type GenRequest struct {
	Prefill int `json:"prefill"`
	Decode  int `json:"decode"`
}

// GenSummary is the JSON trailer of a /generate stream, reported in modeled
// seconds (unscaled by TimeScale, like InferResponse.Latency).
type GenSummary struct {
	Model   string  `json:"model"`
	Prefill int     `json:"prefill"`
	Decode  int     `json:"decode"`
	TTFT    float64 `json:"ttft"`
	Latency float64 `json:"latency"`
}

// genSeq is one in-flight /generate request inside the worker's
// continuous-batching loop. The step loop owns every field while the
// sequence is queued or running; the handler reads sum and reject only
// after tok is closed, which orders the writes.
type genSeq struct {
	prefill, decode int
	arrival         time.Time
	traceID         string

	admitAt         time.Time
	prefillLeft     int
	decodeLeft      int
	kvHeld          int
	reserve         int
	prefillChunk    int
	decodeScheduled bool
	firstTokenAt    time.Time
	lastTokenAt     time.Time

	// tok receives one send per generated token and is closed on
	// completion (or rejection). Capacity covers every token, so the step
	// loop never blocks on a slow reader.
	tok    chan struct{}
	sum    GenSummary
	reject string
}

// LLMWorker is an HTTP worker for the token-level workload: POST /generate
// runs the request through a continuous-batching step loop shared across
// all in-flight requests, streaming one byte per generated token (the
// client's first byte read is a real wire TTFT measurement) and closing
// with a newline-delimited JSON summary trailer. The loop mirrors the
// simulator's engine — per-step admission under KV reservations, decode-
// first composition, chunked prefill, drain-then-switch model selection —
// but advances in wall-clock time: each step holds the batch for the step
// model's modeled latency divided by TimeScale. Metrics are reported in
// modeled time either way, like the scalar Worker.
type LLMWorker struct {
	Models    llm.Set
	SLO       float64
	TimeScale float64
	// Selector is consulted at every step boundary with the worker's
	// observable state; nil pins the most accurate model.
	Selector sim.ModelSelector
	// KVCap, when > 0, overrides every model's KV capacity in tokens.
	KVCap int
	// Telemetry backs /metrics; Start builds a registry when nil. The LLM
	// serving series (TTFT, TBT, step latency, token counts, KV usage) use
	// the same names the simulator's engine exports.
	Telemetry *telemetry.Registry
	// Name and Index mark this worker's trace fragments, as on Worker.
	Name  string
	Index int
	// Traces rings a fragment per served request (batch_wait, prefill,
	// decode spans); Start builds one when nil.
	Traces *telemetry.TraceBuffer
	// TraceWriter, when set, additionally streams fragments as JSONL.
	TraceWriter *telemetry.TraceWriter

	mu         sync.Mutex
	cond       *sync.Cond
	models     llm.Set // KV-cap-overridden serving set
	model      int
	draining   bool
	waiting    []*genSeq
	running    []*genSeq
	kvUsed     int
	kvReserved int
	outTok     int
	stopped    bool
	srv        *http.Server
	addr       string

	ttftHist, tbtHist, stepHist, latHist *telemetry.Histogram
	prefillCtr, decodeCtr, switchCtr     *telemetry.Counter
	queriesCtr, violationsCtr, satAccCtr *telemetry.Counter
	stepsVec, modelQueriesVec            *telemetry.CounterVec
	kvGauge                              *telemetry.Gauge
}

// NewLLMWorker builds an LLM worker server (not yet started).
func NewLLMWorker(models llm.Set, slo, timeScale float64, sel sim.ModelSelector) *LLMWorker {
	if timeScale <= 0 {
		timeScale = 1
	}
	return &LLMWorker{
		Models:    models,
		SLO:       slo,
		TimeScale: timeScale,
		Selector:  sel,
		Index:     -1,
	}
}

// Start validates the model set, listens on a random localhost port, and
// launches the step loop.
func (w *LLMWorker) Start() error {
	if err := w.Models.Validate(); err != nil {
		return err
	}
	w.models = w.Models.WithKVCap(w.KVCap)
	w.model = w.models.MostAccurate()
	w.cond = sync.NewCond(&w.mu)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	w.addr = ln.Addr().String()
	if w.Telemetry == nil {
		w.Telemetry = telemetry.NewRegistry()
	}
	if w.Name == "" {
		w.Name = "llm-worker"
	}
	if w.Traces == nil {
		w.Traces = telemetry.NewTraceBuffer(0)
	}
	reg := w.Telemetry
	reg.Help(telemetry.MetricLLMTTFT, "Time to first token in modeled seconds.")
	reg.Help(telemetry.MetricLLMTBT, "Time between decode tokens in modeled seconds.")
	reg.Help(telemetry.MetricLLMStepSeconds, "Continuous-batching step latency in modeled seconds.")
	reg.Help(telemetry.MetricLLMKVUsage, "KV-cache occupancy fraction per worker.")
	w.ttftHist = reg.Histogram(telemetry.MetricLLMTTFT)
	w.tbtHist = reg.Histogram(telemetry.MetricLLMTBT)
	w.stepHist = reg.Histogram(telemetry.MetricLLMStepSeconds)
	w.latHist = reg.Histogram(telemetry.MetricLatencySeconds)
	w.prefillCtr = reg.Counter(telemetry.MetricLLMTokens, "kind", "prefill")
	w.decodeCtr = reg.Counter(telemetry.MetricLLMTokens, "kind", "decode")
	w.switchCtr = reg.Counter(telemetry.MetricLLMModelSwitches)
	w.queriesCtr = reg.Counter(telemetry.MetricQueries)
	w.violationsCtr = reg.Counter(telemetry.MetricViolations)
	w.satAccCtr = reg.Counter(telemetry.MetricSatAccuracySum)
	w.stepsVec = reg.CounterVec(telemetry.MetricLLMSteps, "model")
	w.modelQueriesVec = reg.CounterVec(telemetry.MetricModelQueries, "model")
	idx := w.Index
	if idx < 0 {
		idx = 0
	}
	w.kvGauge = reg.Gauge(telemetry.MetricLLMKVUsage, "worker", strconv.Itoa(idx))
	mux := http.NewServeMux()
	mux.HandleFunc("/generate", w.handleGenerate)
	mux.HandleFunc("/healthz", func(rw http.ResponseWriter, _ *http.Request) {
		rw.WriteHeader(http.StatusOK)
	})
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/traces", w.Traces.Handler())
	telemetry.RegisterPprof(mux)
	w.srv = &http.Server{Handler: mux}
	go func() { _ = w.srv.Serve(ln) }()
	go w.loop()
	return nil
}

// URL returns the worker's base URL.
func (w *LLMWorker) URL() string { return "http://" + w.addr }

// Stop halts the step loop, fails any in-flight requests, and shuts the
// server down.
func (w *LLMWorker) Stop() error {
	w.mu.Lock()
	if !w.stopped {
		w.stopped = true
		for _, s := range append(w.waiting, w.running...) {
			s.reject = "worker stopped"
			close(s.tok)
		}
		w.waiting, w.running = nil, nil
		w.cond.Broadcast()
	}
	w.mu.Unlock()
	if w.srv == nil {
		return nil
	}
	return w.srv.Close()
}

func (w *LLMWorker) handleGenerate(rw http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		http.Error(rw, "POST required", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(req.Body)
	if err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	var gr GenRequest
	if err := json.Unmarshal(body, &gr); err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	gr.Prefill = max(gr.Prefill, 1)
	gr.Decode = max(gr.Decode, 1)
	s := &genSeq{
		prefill: gr.Prefill,
		decode:  gr.Decode,
		arrival: time.Now(),
		traceID: req.Header.Get("X-Trace-Id"),
		tok:     make(chan struct{}, gr.Decode),
	}
	w.mu.Lock()
	if w.stopped {
		w.mu.Unlock()
		http.Error(rw, "worker stopped", http.StatusServiceUnavailable)
		return
	}
	w.waiting = append(w.waiting, s)
	w.outTok += gr.Prefill + gr.Decode
	w.mu.Unlock()
	w.cond.Signal()

	// Stream one byte per generated token, flushing each so the client's
	// first byte is a real wire-level TTFT. Headers ride out with the first
	// token write.
	fl, _ := rw.(http.Flusher)
	rw.Header().Set("Content-Type", "application/octet-stream")
	streamed := 0
	for range s.tok {
		if _, err := rw.Write([]byte{'t'}); err != nil {
			return // client went away; the loop still finishes the sequence
		}
		if fl != nil {
			fl.Flush()
		}
		streamed++
	}
	if s.reject != "" && streamed == 0 {
		http.Error(rw, s.reject, http.StatusServiceUnavailable)
		return
	}
	trailer, err := json.Marshal(s.sum)
	if err != nil {
		return
	}
	_, _ = rw.Write(append(append(make([]byte, 0, len(trailer)+1), '\n'), trailer...))
}

// loop is the worker's continuous-batching engine: admit at step
// boundaries, compose decode-first under the step budget, hold the batch
// for the modeled step time compressed by TimeScale, then land tokens.
func (w *LLMWorker) loop() {
	w.mu.Lock()
	defer w.mu.Unlock()
	for {
		for !w.stopped && len(w.waiting) == 0 && len(w.running) == 0 {
			w.cond.Wait()
		}
		if w.stopped {
			return
		}
		w.maybeSwitch()
		m := w.models.Models[w.model]
		cap := m.KVCapTokens
		if !w.draining {
			for len(w.waiting) > 0 && len(w.running) < m.MaxSeqs {
				s := w.waiting[0]
				need := s.prefill + s.decode
				if w.kvReserved+need > cap {
					if len(w.running) == 0 && w.kvReserved == 0 {
						// Can never fit this model's cache even empty:
						// reject rather than deadlock the queue head.
						w.waiting = w.waiting[1:]
						w.outTok -= need
						s.reject = fmt.Sprintf("request footprint %d tokens exceeds model %s KV capacity %d",
							need, m.Name, cap)
						close(s.tok)
						continue
					}
					break // FIFO admission: no head-of-line bypass
				}
				w.kvReserved += need
				s.admitAt = time.Now()
				s.prefillLeft = s.prefill
				s.decodeLeft = s.decode
				s.reserve = need
				w.running = append(w.running, s)
				w.waiting = w.waiting[1:]
			}
		}
		if len(w.running) == 0 {
			continue
		}

		budget := m.StepBudget()
		p, d := 0, 0
		for _, s := range w.running {
			s.decodeScheduled = false
			s.prefillChunk = 0
			if s.prefillLeft == 0 && s.decodeLeft > 0 && d < budget {
				s.decodeScheduled = true
				d++
			}
		}
		for _, s := range w.running {
			if s.prefillLeft > 0 && p+d < budget {
				chunk := min(s.prefillLeft, budget-p-d)
				s.prefillChunk = chunk
				p += chunk
			}
		}
		kv := float64(w.kvUsed) / float64(cap)
		tau := m.StepTime(p, d, kv)
		w.stepHist.Observe(tau)
		w.stepsVec.With(m.Name).Inc()
		w.prefillCtr.Add(float64(p))
		w.decodeCtr.Add(float64(d))

		w.mu.Unlock()
		time.Sleep(time.Duration(tau / w.TimeScale * float64(time.Second)))
		w.mu.Lock()
		if w.stopped {
			return
		}
		w.completeStep(m, time.Now())
	}
}

// maybeSwitch applies the selector's decision at a step boundary: an
// immediate switch when the running batch is empty, drain mode otherwise.
func (w *LLMWorker) maybeSwitch() {
	if w.Selector == nil {
		return
	}
	head, ok := w.headArrival()
	if !ok {
		return
	}
	m := w.models.Models[w.model]
	kv := float64(w.kvUsed) / float64(m.KVCapTokens)
	queued := len(w.waiting) + len(w.running)
	slack := w.SLO - time.Since(head).Seconds()*w.TimeScale
	desired := w.Selector.SelectModel(queued, w.outTok, kv, slack)
	if desired < 0 || desired >= w.models.Len() || desired == w.model {
		w.draining = false
		return
	}
	if len(w.running) == 0 {
		w.model = desired
		w.draining = false
		w.switchCtr.Inc()
		return
	}
	w.draining = true
}

// headArrival returns the oldest arrival across waiting and running.
func (w *LLMWorker) headArrival() (time.Time, bool) {
	var t time.Time
	ok := false
	if len(w.running) > 0 {
		t, ok = w.running[0].arrival, true
	}
	if len(w.waiting) > 0 && (!ok || w.waiting[0].arrival.Before(t)) {
		t, ok = w.waiting[0].arrival, true
	}
	return t, ok
}

// modeled converts a wall-clock duration to modeled seconds.
func (w *LLMWorker) modeled(d time.Duration) float64 {
	return d.Seconds() * w.TimeScale
}

// completeStep lands the step's scheduled tokens: prefill chunks enter the
// KV cache (a finishing prefill emits the first token), decode tokens
// advance their sequences, finished sequences release their reservations
// and answer their handler.
func (w *LLMWorker) completeStep(m llm.StepModel, end time.Time) {
	cap := m.KVCapTokens
	keep := w.running[:0]
	for _, s := range w.running {
		if s.prefillChunk > 0 {
			w.kvUsed += s.prefillChunk
			s.kvHeld += s.prefillChunk
			s.prefillLeft -= s.prefillChunk
			w.outTok -= s.prefillChunk
			s.prefillChunk = 0
			if s.prefillLeft == 0 {
				s.decodeLeft--
				s.kvHeld++
				w.kvUsed++
				w.outTok--
				s.firstTokenAt = end
				s.lastTokenAt = end
				w.ttftHist.Observe(w.modeled(end.Sub(s.arrival)))
				s.tok <- struct{}{}
			}
		} else if s.decodeScheduled {
			s.decodeScheduled = false
			s.decodeLeft--
			s.kvHeld++
			w.kvUsed++
			w.outTok--
			w.tbtHist.Observe(w.modeled(end.Sub(s.lastTokenAt)))
			s.lastTokenAt = end
			s.tok <- struct{}{}
		}
		if s.prefillLeft == 0 && s.decodeLeft == 0 {
			w.kvUsed -= s.kvHeld
			w.kvReserved -= s.reserve
			w.finish(s, m, end)
		} else {
			keep = append(keep, s)
		}
	}
	w.running = keep
	w.kvGauge.Set(float64(w.kvUsed) / float64(cap))
}

// finish records one served request and releases its handler.
func (w *LLMWorker) finish(s *genSeq, m llm.StepModel, end time.Time) {
	lat := w.modeled(end.Sub(s.arrival))
	ttft := w.modeled(s.firstTokenAt.Sub(s.arrival))
	w.latHist.Observe(lat)
	w.queriesCtr.Inc()
	if w.SLO > 0 && lat > w.SLO {
		w.violationsCtr.Inc()
	} else {
		w.satAccCtr.Add(m.Accuracy)
	}
	w.modelQueriesVec.With(m.Name).Inc()
	qt := telemetry.QueryTrace{
		ID: -1, Worker: w.Index,
		Model: m.Name, Batch: len(w.running) + 1,
		LatencyMS:   lat * 1000,
		DeadlineMet: w.SLO <= 0 || lat <= w.SLO,
		TraceID:     s.traceID, Process: w.Name,
		Spans: []telemetry.Span{
			{Stage: telemetry.StageBatchWait, Seconds: w.modeled(s.admitAt.Sub(s.arrival))},
			{Stage: telemetry.StagePrefill, Seconds: w.modeled(s.firstTokenAt.Sub(s.admitAt))},
			{Stage: telemetry.StageDecode, Seconds: w.modeled(end.Sub(s.firstTokenAt))},
		},
	}
	w.Traces.Add(qt)
	if w.TraceWriter != nil {
		_ = w.TraceWriter.Write(qt)
	}
	s.sum = GenSummary{
		Model:   m.Name,
		Prefill: s.prefill,
		Decode:  s.decode,
		TTFT:    ttft,
		Latency: lat,
	}
	close(s.tok)
}

// GenResult is the client-side view of one /generate stream: wall-clock
// wire measurements (seconds) alongside the worker's modeled-time summary.
// TTFTWall is the time from POST to the first streamed token byte — a real
// network measurement, not a server-reported figure.
type GenResult struct {
	TTFTWall    float64
	LatencyWall float64
	Tokens      int
	Summary     GenSummary
}

// PostGenerate issues one /generate call and consumes the token stream,
// timing the first byte (wire TTFT) and the full exchange.
func PostGenerate(c *http.Client, base string, prefill, decode int) (GenResult, error) {
	var res GenResult
	body, err := json.Marshal(GenRequest{Prefill: prefill, Decode: decode})
	if err != nil {
		return res, err
	}
	start := time.Now()
	resp, err := c.Post(base+"/generate", "application/json", bytes.NewReader(body))
	if err != nil {
		return res, err
	}
	defer resp.Body.Close()
	var first [1]byte
	if _, err := io.ReadFull(resp.Body, first[:]); err != nil {
		return res, fmt.Errorf("serve: /generate %s: empty stream: %w", resp.Status, err)
	}
	res.TTFTWall = time.Since(start).Seconds()
	rest, err := io.ReadAll(resp.Body)
	if err != nil {
		return res, err
	}
	res.LatencyWall = time.Since(start).Seconds()
	data := append(first[:1:1], rest...)
	if resp.StatusCode != http.StatusOK {
		return res, fmt.Errorf("serve: /generate %s: %s", resp.Status, bytes.TrimSpace(data))
	}
	i := bytes.IndexByte(data, '\n')
	if i < 0 {
		return res, fmt.Errorf("serve: /generate stream missing summary trailer")
	}
	res.Tokens = i
	if err := json.Unmarshal(data[i+1:], &res.Summary); err != nil {
		return res, fmt.Errorf("serve: /generate summary: %w", err)
	}
	return res, nil
}
