// Package plot renders small ASCII charts for the experiment harness, so
// cmd/experiments can show each figure's series directly in the terminal
// alongside the numeric rows.
package plot

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Point is one (x, y) sample.
type Point struct {
	X, Y float64
}

// Series is one labeled line in a chart.
type Series struct {
	Label  string
	Points []Point
}

// markers assigns one glyph per series, in order.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Render draws the series as an ASCII scatter chart of the given plot-area
// size (sensible minimums are enforced), with y-axis ticks, an x-axis
// range line, and a legend.
func Render(w io.Writer, title string, width, height int, series []Series) {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	var xs, ys []float64
	for _, s := range series {
		for _, p := range s.Points {
			if math.IsNaN(p.X) || math.IsNaN(p.Y) || math.IsInf(p.X, 0) || math.IsInf(p.Y, 0) {
				continue
			}
			xs = append(xs, p.X)
			ys = append(ys, p.Y)
		}
	}
	if len(xs) == 0 {
		fmt.Fprintf(w, "%s\n(no data)\n", title)
		return
	}
	xmin, xmax := minMax(xs)
	ymin, ymax := minMax(ys)
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	// Pad the y range slightly so extremes do not sit on the border.
	pad := (ymax - ymin) * 0.05
	ymin -= pad
	ymax += pad

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		for _, p := range s.Points {
			if math.IsNaN(p.Y) || math.IsInf(p.Y, 0) {
				continue
			}
			c := int(math.Round((p.X - xmin) / (xmax - xmin) * float64(width-1)))
			r := int(math.Round((ymax - p.Y) / (ymax - ymin) * float64(height-1)))
			if c < 0 || c >= width || r < 0 || r >= height {
				continue
			}
			if grid[r][c] != ' ' && grid[r][c] != m {
				grid[r][c] = '?' // overlapping series
			} else {
				grid[r][c] = m
			}
		}
	}

	fmt.Fprintf(w, "%s\n", title)
	for r := 0; r < height; r++ {
		yv := ymax - (ymax-ymin)*float64(r)/float64(height-1)
		fmt.Fprintf(w, "%10.4f |%s\n", yv, string(grid[r]))
	}
	fmt.Fprintf(w, "%10s +%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(w, "%10s  %-*g%*g\n", "", width/2, xmin, width-width/2, xmax)
	var legend []string
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c %s", markers[si%len(markers)], s.Label))
	}
	sort.Strings(legend)
	fmt.Fprintf(w, "%10s  %s\n\n", "", strings.Join(legend, "   "))
}

func minMax(xs []float64) (float64, float64) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	return lo, hi
}
