package admit

import (
	"sync"
	"sync/atomic"
)

// DegradeConfig parameterizes the degraded-mode controller.
type DegradeConfig struct {
	// MaxLevel is the deepest degradation level. Level k removes the k
	// slowest models from the selectable set, so level MaxLevel = number
	// of models - 1 leaves only the fastest. Zero disables degradation.
	MaxLevel int
	// Window is the pressure-evaluation period in modeled seconds
	// (default 1). Shed-rate is measured per window, so one unlucky
	// arrival cannot flip the mode.
	Window float64
	// EnterShedRate is the windowed shed fraction at or above which
	// overload is confirmed and the level escalates (default 0.05).
	EnterShedRate float64
	// EnterWait is the estimated queue wait (seconds) at or above which
	// overload is confirmed even without shedding; 0 disables the wait
	// trigger. Setting it to the SLO catches saturation before the first
	// deadline miss.
	EnterWait float64
	// Hold is how long (modeled seconds) pressure must stay clear before
	// the level steps back down, one level per Hold (default 3×Window).
	// Clear means shed rate below EnterShedRate/2 and wait below
	// EnterWait/2 — the exit thresholds sit at half the entry thresholds,
	// so the mode cannot flap at the boundary.
	Hold float64
}

func (c DegradeConfig) withDefaults() DegradeConfig {
	if c.Window <= 0 {
		c.Window = 1
	}
	if c.EnterShedRate <= 0 {
		c.EnterShedRate = 0.05
	}
	if c.Hold <= 0 {
		c.Hold = 3 * c.Window
	}
	return c
}

// DegradeStats is a snapshot of the controller's counters.
type DegradeStats struct {
	// Level is the current degradation level (0 = policy's own choice).
	Level int
	// Escalations and Deescalations count level transitions.
	Escalations   uint64
	Deescalations uint64
}

// Degrader confirms overload from windowed shed rate and estimated queue
// wait, and answers "how hard should model selection be clamped right now".
// Under confirmed overload it escalates one level per window; once pressure
// clears it de-escalates one level per Hold, restoring the policy's own
// choice. Escalation is fast (a saturated queue punishes every admitted
// query) and recovery is deliberate (hysteresis: exit thresholds are half
// the entry thresholds, and each step down requires a full clear Hold).
//
// Observe is serialized by a mutex; Level is a single atomic load so the
// dispatch path never contends with arrivals.
type Degrader struct {
	cfg DegradeConfig

	level atomic.Int32

	mu           sync.Mutex
	winStart     float64
	arrivals     int
	shed         int
	maxWait      float64
	lastPressure float64

	escalations   atomic.Uint64
	deescalations atomic.Uint64

	// OnChange, when set, observes every level transition (telemetry
	// hook). It is called under the Degrader's lock; keep it cheap.
	OnChange func(level int, up bool)
}

// NewDegrader builds a degraded-mode controller; a MaxLevel of 0 yields a
// controller that never degrades (Level is always 0). Windows are anchored
// at modeled time zero, where both the simulator clock and the frontend's
// scaled wall clock start.
func NewDegrader(cfg DegradeConfig) *Degrader {
	cfg = cfg.withDefaults()
	return &Degrader{cfg: cfg, lastPressure: -cfg.Hold}
}

// Level returns the current degradation level: the number of slowest
// models the selector must not use.
func (d *Degrader) Level() int { return int(d.level.Load()) }

// Stats returns a snapshot of the controller's counters.
func (d *Degrader) Stats() DegradeStats {
	return DegradeStats{
		Level:         d.Level(),
		Escalations:   d.escalations.Load(),
		Deescalations: d.deescalations.Load(),
	}
}

// Observe feeds one admission outcome at modeled time now: whether the
// query was shed and the admitter's estimated queue wait. Windows are
// evaluated lazily on observation, so the controller needs no clock of its
// own and works identically under simulated and wall time.
func (d *Degrader) Observe(now float64, shed bool, estWait float64) {
	if d.cfg.MaxLevel <= 0 {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.arrivals++
	if shed {
		d.shed++
	}
	if estWait > d.maxWait {
		d.maxWait = estWait
	}
	if now-d.winStart < d.cfg.Window {
		return
	}

	rate := 0.0
	if d.arrivals > 0 {
		rate = float64(d.shed) / float64(d.arrivals)
	}
	pressured := rate >= d.cfg.EnterShedRate ||
		(d.cfg.EnterWait > 0 && d.maxWait >= d.cfg.EnterWait)
	clear := rate < d.cfg.EnterShedRate/2 &&
		(d.cfg.EnterWait <= 0 || d.maxWait < d.cfg.EnterWait/2)

	lvl := int(d.level.Load())
	switch {
	case pressured:
		d.lastPressure = now
		if lvl < d.cfg.MaxLevel {
			d.setLevel(lvl+1, true)
		}
	case clear && lvl > 0 && now-d.lastPressure >= d.cfg.Hold:
		d.setLevel(lvl-1, false)
		// Each further step down requires its own full clear Hold.
		d.lastPressure = now
	case !clear:
		// Neither confirmed overload nor confirmed calm: hold the level
		// and restart the recovery clock.
		d.lastPressure = now
	}
	d.winStart = now
	d.arrivals, d.shed, d.maxWait = 0, 0, 0
}

func (d *Degrader) setLevel(lvl int, up bool) {
	d.level.Store(int32(lvl))
	if up {
		d.escalations.Add(1)
	} else {
		d.deescalations.Add(1)
	}
	if d.OnChange != nil {
		d.OnChange(lvl, up)
	}
}
