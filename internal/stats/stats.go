// Package stats provides the small statistical helpers shared by the
// simulator, profiler, and experiment harnesses.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		sum += (x - m) * (x - m)
	}
	return math.Sqrt(sum / float64(len(xs)))
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// nearest-rank on a sorted copy. It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// Max returns the maximum of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	max := math.Inf(-1)
	for _, x := range xs {
		max = math.Max(max, x)
	}
	return max
}

// Min returns the minimum of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	min := math.Inf(1)
	for _, x := range xs {
		min = math.Min(min, x)
	}
	return min
}
