package core

import (
	"fmt"
	"sort"
	"sync"

	"ramsis/internal/dist"
)

// PolicySet holds MS policies specialized per query load (§3.1.3) and
// implements the online selection rule of §3.2.2: use the lowest-load policy
// that meets the anticipated load, generating a new one on demand when the
// anticipated load exceeds every pre-computed policy.
type PolicySet struct {
	mu         sync.Mutex
	base       Config
	arrival    func(load float64) dist.Process
	policies   []*Policy // sorted by ascending Load
	generating map[float64]bool
}

// OnDemandRung is the granularity on-demand loads are rounded up to, so a
// stream of slightly different anticipated loads does not generate a policy
// per observation.
const OnDemandRung = 100.0

// NewPolicySet creates a policy set over the base configuration; each
// policy's arrival distribution is arrivalFor(load), defaulting to Poisson
// as in the paper's experiments.
func NewPolicySet(base Config, arrivalFor func(load float64) dist.Process) *PolicySet {
	if arrivalFor == nil {
		arrivalFor = func(load float64) dist.Process { return dist.NewPoisson(load) }
	}
	return &PolicySet{base: base, arrival: arrivalFor}
}

// Policies returns the policies sorted by ascending load.
func (ps *PolicySet) Policies() []*Policy {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return append([]*Policy(nil), ps.policies...)
}

// Loads returns the loads the set currently covers, ascending.
func (ps *PolicySet) Loads() []float64 {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	out := make([]float64, len(ps.policies))
	for i, p := range ps.policies {
		out[i] = p.Load
	}
	return out
}

// generate builds one policy (no locking).
func (ps *PolicySet) generate(load float64) (*Policy, error) {
	cfg := ps.base
	cfg.Arrival = ps.arrival(load)
	return Generate(cfg)
}

// insert adds a policy keeping the slice sorted (caller holds the lock).
func (ps *PolicySet) insert(p *Policy) {
	i := sort.Search(len(ps.policies), func(i int) bool { return ps.policies[i].Load >= p.Load })
	if i < len(ps.policies) && ps.policies[i].Load == p.Load {
		ps.policies[i] = p
		return
	}
	ps.policies = append(ps.policies, nil)
	copy(ps.policies[i+1:], ps.policies[i:])
	ps.policies[i] = p
}

// Insert adds an externally constructed policy (e.g. loaded from a cache
// directory) into the set.
func (ps *PolicySet) Insert(p *Policy) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	ps.insert(p)
}

// Clone returns a copy-on-write duplicate: the ladder slice is copied but
// the (immutable) policy objects are shared. The adaptation layer publishes
// whole sets behind an atomic pointer, so a set is never mutated after
// publication — readers get a consistent ladder without taking its lock.
func (ps *PolicySet) Clone() *PolicySet {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return &PolicySet{
		base:     ps.base,
		arrival:  ps.arrival,
		policies: append([]*Policy(nil), ps.policies...),
	}
}

// Best returns the policy that should serve an anticipated load without
// ever generating: the lowest-load policy meeting the load (§3.2.2), or the
// highest-load policy available when the load exceeds the whole ladder. It
// returns nil only for an empty set. Generation is the adaptation layer's
// job; the decision path must stay lookup-only.
func (ps *PolicySet) Best(load float64) *Policy {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if len(ps.policies) == 0 {
		return nil
	}
	i := sort.Search(len(ps.policies), func(i int) bool { return ps.policies[i].Load >= load })
	if i < len(ps.policies) {
		return ps.policies[i]
	}
	return ps.policies[len(ps.policies)-1]
}

// GenerateLoads pre-computes policies for the given loads in parallel.
func (ps *PolicySet) GenerateLoads(loads []float64) error {
	pols := make([]*Policy, len(loads))
	errs := make([]error, len(loads))
	parallelFor(len(loads), func(i int) {
		pols[i], errs[i] = ps.generate(loads[i])
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	for _, p := range pols {
		ps.insert(p)
	}
	return nil
}

// Refine pre-computes policies between minLoad and maxLoad until every pair
// of load-adjacent policies differs by less than accThreshold in expected
// accuracy (§6 "Query Load Adaptation"; the paper uses 1%, i.e. 0.01).
// maxPolicies bounds the ladder size (0 means 64).
func (ps *PolicySet) Refine(minLoad, maxLoad, accThreshold float64, maxPolicies int) error {
	if maxPolicies == 0 {
		maxPolicies = 64
	}
	if minLoad <= 0 || maxLoad < minLoad {
		return fmt.Errorf("core: invalid refine range [%v, %v]", minLoad, maxLoad)
	}
	if err := ps.GenerateLoads([]float64{minLoad, maxLoad}); err != nil {
		return err
	}
	for {
		ps.mu.Lock()
		var split float64
		for i := 1; i < len(ps.policies); i++ {
			lo, hi := ps.policies[i-1], ps.policies[i]
			if lo.Load < minLoad || hi.Load > maxLoad {
				continue
			}
			gap := lo.ExpectedAccuracy - hi.ExpectedAccuracy
			if gap < 0 {
				gap = -gap
			}
			if gap >= accThreshold && hi.Load-lo.Load > 1 {
				split = (lo.Load + hi.Load) / 2
				break
			}
		}
		n := len(ps.policies)
		ps.mu.Unlock()
		if split == 0 || n >= maxPolicies {
			return nil
		}
		if err := ps.GenerateLoads([]float64{split}); err != nil {
			return err
		}
	}
}

// PolicyFor returns the policy for an anticipated query load: the
// lowest-load policy whose load meets it. If the load exceeds every
// pre-computed policy, a new one is generated (rounded up to the next
// OnDemandRung) and cached (§3.2.2).
func (ps *PolicySet) PolicyFor(load float64) (*Policy, error) {
	ps.mu.Lock()
	if len(ps.policies) == 0 {
		ps.mu.Unlock()
		return nil, fmt.Errorf("core: empty policy set")
	}
	i := sort.Search(len(ps.policies), func(i int) bool { return ps.policies[i].Load >= load })
	if i < len(ps.policies) {
		p := ps.policies[i]
		ps.mu.Unlock()
		return p, nil
	}
	ps.mu.Unlock()
	rung := roundUpRung(load)
	p, err := ps.generate(rung)
	if err != nil {
		return nil, err
	}
	ps.mu.Lock()
	ps.insert(p)
	ps.mu.Unlock()
	return p, nil
}

// PolicyForNow is the non-blocking variant used by real-time serving: when
// the anticipated load exceeds the ladder it immediately returns the
// highest-load policy available and generates the missing policy in the
// background, so serving never stalls behind policy generation.
func (ps *PolicySet) PolicyForNow(load float64) (*Policy, error) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if len(ps.policies) == 0 {
		return nil, fmt.Errorf("core: empty policy set")
	}
	i := sort.Search(len(ps.policies), func(i int) bool { return ps.policies[i].Load >= load })
	if i < len(ps.policies) {
		return ps.policies[i], nil
	}
	rung := roundUpRung(load)
	if ps.generating == nil {
		ps.generating = map[float64]bool{}
	}
	if !ps.generating[rung] {
		ps.generating[rung] = true
		go func() {
			p, err := ps.generate(rung)
			ps.mu.Lock()
			defer ps.mu.Unlock()
			delete(ps.generating, rung)
			if err == nil {
				ps.insert(p)
			}
		}()
	}
	return ps.policies[len(ps.policies)-1], nil
}

func roundUpRung(load float64) float64 {
	r := float64(int(load/OnDemandRung)) * OnDemandRung
	if r < load {
		r += OnDemandRung
	}
	if r <= 0 {
		r = OnDemandRung
	}
	return r
}
