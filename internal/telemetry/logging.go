package telemetry

import (
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
)

// NewLogger builds a slog.Logger writing to w at the given level ("debug",
// "info", "warn", "error") and format ("text" or "json"), tagged with the
// component name (the CLI previously encoded in its log.SetPrefix).
func NewLogger(w io.Writer, level, format, component string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "", "info":
		lvl = slog.LevelInfo
	case "debug":
		lvl = slog.LevelDebug
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("telemetry: unknown log level %q (want debug, info, warn, or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	var h slog.Handler
	switch strings.ToLower(format) {
	case "", "text":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("telemetry: unknown log format %q (want text or json)", format)
	}
	l := slog.New(h)
	if component != "" {
		l = l.With("component", component)
	}
	return l, nil
}

// SetupLogging installs a NewLogger on stderr as the slog default, which
// also routes the legacy log package (log.Printf, log.Fatal) through the
// structured handler — replacing the CLIs' ad-hoc log.SetPrefix setup.
func SetupLogging(level, format, component string) (*slog.Logger, error) {
	l, err := NewLogger(os.Stderr, level, format, component)
	if err != nil {
		return nil, err
	}
	slog.SetDefault(l)
	return l, nil
}
