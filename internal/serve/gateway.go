package serve

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"ramsis/internal/telemetry"
	"ramsis/internal/tenant"
)

// Gateway fronts a sharded deployment: it resolves each query's tenant,
// picks a frontend shard by the configured sharding policy, and enqueues
// the query in-process on that shard (the shards share the gateway's
// address space — sharding here partitions queues and worker pools, not
// machines). It also serves the merged observability surface: /metrics
// from the registry every shard writes into, /stats with the per-tenant
// breakdown, and /reload for tenant-config hot swaps.
type Gateway struct {
	// Shards are the started frontend shards, index = shard id.
	Shards []*Frontend
	// Sharder picks a shard per query (default rendezvous hashing).
	Sharder tenant.Sharder
	// Plane is the shared per-tenant control state (required).
	Plane *TenantPlane
	// Addr is the listen address (default random localhost port).
	Addr string
	// TenantFile, when set, is re-parsed on POST /reload.
	TenantFile string
	// Telemetry is the shared registry (required: the same one the shards
	// and the plane write into).
	Telemetry *telemetry.Registry
	// Traces rings the gateway-side fragments (tenant resolution + shard
	// routing); Start builds one when nil.
	Traces *telemetry.TraceBuffer
	// TraceWriter, when set, streams gateway fragments as JSONL. A sharded
	// cluster shares one writer plane-wide so a single file stitches.
	TraceWriter *telemetry.TraceWriter
	// Decisions is the plane-wide policy-decision ring served at
	// /debug/decisions (the sharded cluster passes the same ring every
	// shard writes into).
	Decisions *telemetry.DecisionBuffer
	// TraceSources are the rings merged into the gateway's /debug/traces:
	// its own plus every shard's and worker's, so one endpoint yields a
	// stitchable view of the whole plane.
	TraceSources []*telemetry.TraceBuffer

	shardQueries []*telemetry.Counter
	goodputVec   *telemetry.GaugeVec
	srv          *http.Server
	addr         string
	start        time.Time
	// depthScratch recycles the per-route shard-depth snapshot the
	// sharder reads, keeping the routing hot path allocation-free.
	depthScratch sync.Pool
}

// GatewayStats is the gateway's /stats document.
type GatewayStats struct {
	Served           int                    `json:"served"`
	Violations       int                    `json:"violations"`
	Shed             int                    `json:"shed"`
	FailedDispatches int                    `json:"failedDispatches"`
	Shards           int                    `json:"shards"`
	ShardDepths      []int                  `json:"shardDepths"`
	ShardQueries     []int                  `json:"shardQueries"`
	TenantVersion    uint64                 `json:"tenantVersion"`
	Tenants          map[string]TenantStats `json:"tenants"`
}

// Start wires the shard-level telemetry and binds the gateway listener.
// The shards must already be started.
func (g *Gateway) Start() error {
	if len(g.Shards) == 0 {
		return fmt.Errorf("serve: gateway needs at least one shard")
	}
	if g.Plane == nil {
		return fmt.Errorf("serve: gateway needs a tenant plane")
	}
	if g.Telemetry == nil {
		return fmt.Errorf("serve: gateway needs the shared telemetry registry")
	}
	if g.Sharder == nil {
		g.Sharder = tenant.Rendezvous{}
	}
	if g.start.IsZero() {
		g.start = time.Now()
	}
	if g.Traces == nil {
		g.Traces = telemetry.NewTraceBuffer(0)
	}
	if g.Decisions == nil {
		g.Decisions = telemetry.NewDecisionBuffer(0)
	}
	if g.TraceSources == nil {
		g.TraceSources = []*telemetry.TraceBuffer{g.Traces}
		for _, fe := range g.Shards {
			if fe.Traces != nil {
				g.TraceSources = append(g.TraceSources, fe.Traces)
			}
		}
	}
	for i, fe := range g.Shards {
		fe := fe
		shard := fmt.Sprintf("%d", i)
		g.shardQueries = append(g.shardQueries,
			g.Telemetry.Counter(telemetry.MetricShardQueries, "shard", shard))
		g.Telemetry.GaugeFunc(telemetry.MetricShardDepth, func() float64 {
			return float64(fe.Outstanding())
		}, "shard", shard)
	}
	g.depthScratch.New = func() any {
		s := make([]int, 0, len(g.Shards))
		return &s
	}
	g.goodputVec = g.Telemetry.GaugeVec(telemetry.MetricTenantGoodput, "tenant")
	g.Telemetry.Help(telemetry.MetricShardDepth, "Outstanding queries per frontend shard.")
	g.Telemetry.Help(telemetry.MetricTenantGoodput, "Per-tenant goodput fraction: in-SLO served / offered.")

	addr := g.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	g.addr = ln.Addr().String()
	mux := http.NewServeMux()
	mux.HandleFunc("/query", g.handleQuery)
	mux.HandleFunc("/stats", g.handleStats)
	mux.HandleFunc("/reload", g.handleReload)
	mux.Handle("/metrics", g.Telemetry.Handler())
	mux.HandleFunc("/debug/traces", g.handleTraces)
	mux.Handle("/debug/decisions", g.Decisions.Handler())
	telemetry.RegisterPprof(mux)
	g.srv = &http.Server{Handler: mux}
	go func() { _ = g.srv.Serve(ln) }()
	return nil
}

// URL returns the gateway's base URL.
func (g *Gateway) URL() string { return "http://" + g.addr }

// Stop closes the gateway listener (the shards are stopped by their
// owner).
func (g *Gateway) Stop() error {
	if g.srv == nil {
		return nil
	}
	return g.srv.Close()
}

// now returns modeled seconds since the plane's shared epoch.
func (g *Gateway) now() float64 {
	return time.Since(g.start).Seconds() * g.Shards[0].TimeScale
}

// Route admits and enqueues one query on the shard the sharding policy
// picks for its tenant, returning the response channel. Load injectors
// call this directly; handleQuery wraps it for HTTP clients. The trace
// context is born here: Route generates the trace ID, records the
// gateway-side fragment, and hands the ID down so the shard's and worker's
// fragments stitch under it.
func (g *Gateway) Route(tenantName string) (<-chan QueryResponse, *EnqueueError) {
	return g.RouteTraced(tenantName, "")
}

// RouteTraced is Route with a caller-supplied trace ID (an HTTP client's
// X-Trace-Id); empty generates a fresh one. The returned channel is
// freshly allocated and safe to abandon; in-process callers that always
// consume the response should prefer Do.
func (g *Gateway) RouteTraced(tenantName, traceID string) (<-chan QueryResponse, *EnqueueError) {
	done := make(chan QueryResponse, 1)
	if eerr := g.route(tenantName, traceID, done); eerr != nil {
		return nil, eerr
	}
	return done, nil
}

// route resolves the tenant, picks a shard, and enqueues there; done (nil
// for fire-and-forget callers) receives the response. Like the shard-level
// enqueue it is allocation-flat at steady state: the depth snapshot comes
// from a pool and the gateway trace fragment's span lives on the stack.
func (g *Gateway) route(tenantName, traceID string, done chan QueryResponse) *EnqueueError {
	t, ok := g.Plane.Registry().Resolve(tenantName)
	if !ok {
		return &EnqueueError{Status: http.StatusBadRequest,
			Msg: fmt.Sprintf("unknown tenant %q", tenantName)}
	}
	if traceID == "" {
		traceID = telemetry.NewTraceID()
	}
	routeStart := g.now()
	dp := g.depthScratch.Get().(*[]int)
	depths := (*dp)[:0]
	for _, fe := range g.Shards {
		depths = append(depths, fe.Outstanding())
	}
	*dp = depths
	// Pick on the canonical name so "" and the default tenant hash alike.
	s := g.Sharder.Pick(t.Name, depths)
	g.depthScratch.Put(dp)
	if s < 0 || s >= len(g.Shards) {
		s = 0
	}
	eerr := g.Shards[s].enqueue(t.Name, traceID, done)
	if eerr == nil {
		g.shardQueries[s].Inc()
	}
	var sp [1]telemetry.Span
	sp[0] = telemetry.Span{Stage: telemetry.StageRoute, Seconds: g.now() - routeStart}
	qt := telemetry.QueryTrace{
		ID: -1, Arrival: routeStart, Worker: -1,
		TraceID: traceID, Process: "gateway",
		Tenant: t.Name, Shard: s,
		Spans: sp[:],
	}
	if eerr != nil {
		qt.Error = eerr.Msg
	}
	g.Traces.Add(qt)
	if g.TraceWriter != nil {
		_ = g.TraceWriter.Write(qt)
	}
	return eerr
}

// RouteAsync routes one query fire-and-forget: the response is counted
// and traced as usual, but no response channel is ever allocated or
// delivered to. Load injectors (cmd/soak -saturate) drive the plane
// through here at saturation rates.
func (g *Gateway) RouteAsync(tenantName string) *EnqueueError {
	return g.route(tenantName, "", nil)
}

// Do routes one query and blocks until its response arrives — the
// in-process equivalent of POST /query on the gateway. Because Do always
// receives the response, its channel is recycled.
func (g *Gateway) Do(tenantName string) (QueryResponse, *EnqueueError) {
	done := donePool.Get().(chan QueryResponse)
	if eerr := g.route(tenantName, "", done); eerr != nil {
		donePool.Put(done)
		return QueryResponse{}, eerr
	}
	resp := <-done
	donePool.Put(done)
	return resp, nil
}

// handleQuery resolves the tenant (X-Tenant header or ?tenant= parameter),
// routes to a shard, and blocks until the query is served.
func (g *Gateway) handleQuery(rw http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		http.Error(rw, "POST required", http.StatusMethodNotAllowed)
		return
	}
	done := donePool.Get().(chan QueryResponse)
	eerr := g.route(tenantFromRequest(req), req.Header.Get("X-Trace-Id"), done)
	if eerr != nil {
		donePool.Put(done)
		writeEnqueueError(rw, eerr)
		return
	}
	select {
	case resp := <-done:
		donePool.Put(done)
		rw.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(rw).Encode(resp)
	case <-req.Context().Done():
		// Abandoned, not recycled: dispatch's pending send would poison
		// the next query that drew this channel from the pool.
	}
}

// Stats assembles the gateway-wide snapshot: aggregate serving counters
// (the shards share one registry, so the totals are already merged) plus
// the per-tenant breakdown. Each tenant's live goodput gauge is refreshed
// as a side effect, so a /stats poll keeps /metrics' goodput current.
func (g *Gateway) Stats() GatewayStats {
	now := time.Since(g.start).Seconds() * g.Shards[0].TimeScale
	tenants := g.Plane.Stats(now)
	depths := make([]int, len(g.Shards))
	sq := make([]int, len(g.Shards))
	for i, fe := range g.Shards {
		depths[i] = fe.Outstanding()
		sq[i] = int(g.shardQueries[i].Value())
	}
	served := int(g.Telemetry.Counter(telemetry.MetricQueries).Value())
	violations := int(g.Telemetry.Counter(telemetry.MetricViolations).Value())
	shed := 0
	for name, ts := range tenants {
		shed += ts.Shed
		g.goodputVec.With(name).Set(ts.Goodput)
	}
	return GatewayStats{
		Served:           served,
		Violations:       violations,
		Shed:             shed,
		FailedDispatches: int(g.Telemetry.Counter(telemetry.MetricFailedDispatches).Value()),
		Shards:           len(g.Shards),
		ShardDepths:      depths,
		ShardQueries:     sq,
		TenantVersion:    g.Plane.Registry().Version(),
		Tenants:          tenants,
	}
}

// handleTraces merges every component ring — the gateway's own fragments,
// each shard's, each worker's — into one JSON array. Feeding the merged
// array to telemetry.Stitch (or `ramsis-trace -stitch`) reassembles each
// query's cross-process span tree.
func (g *Gateway) handleTraces(rw http.ResponseWriter, _ *http.Request) {
	merged := []telemetry.QueryTrace{}
	for _, src := range g.TraceSources {
		if src != nil {
			merged = append(merged, src.Snapshot()...)
		}
	}
	rw.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(rw).Encode(merged)
}

func (g *Gateway) handleStats(rw http.ResponseWriter, _ *http.Request) {
	rw.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(rw).Encode(g.Stats())
}

// handleReload re-reads the tenant config file and hot-swaps the registry;
// the fair admitter and plane pick up the new set on their next admit and
// state lookup. POST only.
func (g *Gateway) handleReload(rw http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		http.Error(rw, "POST required", http.StatusMethodNotAllowed)
		return
	}
	if g.TenantFile == "" {
		http.Error(rw, "no tenant file configured", http.StatusBadRequest)
		return
	}
	if err := g.Plane.Registry().ReloadFile(g.TenantFile); err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	rw.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(rw).Encode(map[string]uint64{"version": g.Plane.Registry().Version()})
}
