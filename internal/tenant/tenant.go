// Package tenant is the multi-tenant serving plane's control data: a
// registry of tenants with per-tenant SLO classes, traffic weights, and
// contracted rates (config-file loadable, atomically hot-reloadable), a
// weighted-fair admission layer over internal/admit, a sharding tier that
// routes tenants across frontend shards, and multi-tenant workload
// generation for the simulator.
//
// Everything single-tenant in the repository becomes the N=1 special case:
// one tenant, weight 1, the engine-wide SLO. The fairness model follows
// T-TAMER's accuracy/latency/fairness framing (PAPERS.md): each tenant's
// weight buys a proportional share of the plane's admission capacity, an
// over-share tenant's excess is shed before any compliant tenant's traffic
// is touched, and unused capacity is work-conservingly lent out.
package tenant

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync/atomic"
)

// DefaultName is the tenant unlabeled traffic is attributed to when the
// registry defines it.
const DefaultName = "default"

// Tenant is one application tenant: its SLO class, fair-share weight, and
// contracted arrival rate.
type Tenant struct {
	// Name identifies the tenant in routing, metrics labels, and /stats.
	Name string `json:"name"`
	// Class is the SLO class label (e.g. "interactive", "standard",
	// "batch"); informational, surfaced in /stats and metrics.
	Class string `json:"class,omitempty"`
	// SLOMS is the tenant's response-latency SLO in milliseconds.
	SLOMS float64 `json:"sloMs"`
	// Weight is the tenant's fair-share weight: admission capacity is
	// split proportionally to weights (must be positive).
	Weight float64 `json:"weight"`
	// RateQPS is the tenant's contracted (solved-for) arrival rate. It
	// seeds per-tenant policy generation and the sim workload generator.
	RateQPS float64 `json:"rateQps"`
	// BurstSec sizes the tenant's admission token bucket in seconds of
	// fair-share rate (default DefaultBurstSec); larger absorbs burstier
	// compliant traffic without borrowing.
	BurstSec float64 `json:"burstSec,omitempty"`
}

// SLO returns the tenant's latency SLO in seconds.
func (t Tenant) SLO() float64 { return t.SLOMS / 1000 }

// Validate checks one tenant in isolation.
func (t Tenant) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("tenant: empty name")
	}
	if t.SLOMS <= 0 {
		return fmt.Errorf("tenant %s: sloMs must be positive, got %v", t.Name, t.SLOMS)
	}
	if t.Weight <= 0 {
		return fmt.Errorf("tenant %s: weight must be positive, got %v", t.Name, t.Weight)
	}
	if t.RateQPS <= 0 {
		return fmt.Errorf("tenant %s: rateQps must be positive, got %v", t.Name, t.RateQPS)
	}
	if t.BurstSec < 0 {
		return fmt.Errorf("tenant %s: burstSec must be non-negative, got %v", t.Name, t.BurstSec)
	}
	return nil
}

// Validate checks a tenant set: each tenant valid, names unique.
func Validate(ts []Tenant) error {
	if len(ts) == 0 {
		return fmt.Errorf("tenant: empty tenant set")
	}
	seen := make(map[string]bool, len(ts))
	for _, t := range ts {
		if err := t.Validate(); err != nil {
			return err
		}
		if seen[t.Name] {
			return fmt.Errorf("tenant %s: duplicate name", t.Name)
		}
		seen[t.Name] = true
	}
	return nil
}

// Parse decodes a tenant config file: either a bare JSON array of tenants
// or an object {"tenants": [...]}.
func Parse(data []byte) ([]Tenant, error) {
	var wrapped struct {
		Tenants []Tenant `json:"tenants"`
	}
	if err := json.Unmarshal(data, &wrapped); err == nil && len(wrapped.Tenants) > 0 {
		return wrapped.Tenants, Validate(wrapped.Tenants)
	}
	var ts []Tenant
	if err := json.Unmarshal(data, &ts); err != nil {
		return nil, fmt.Errorf("tenant: decode config: %w", err)
	}
	return ts, Validate(ts)
}

// snapshot is one immutable registry generation; lookups read it through a
// single atomic pointer load, so reloads never block the admission path.
type snapshot struct {
	list    []Tenant
	byName  map[string]int
	version uint64
	weight  float64 // sum of weights
	rate    float64 // sum of contracted rates
}

// Registry holds the live tenant set behind an atomic pointer:
// Lookup/All/Version are lock-free reads of the current generation, and
// Reload swaps in a validated replacement without disturbing readers
// mid-decision — the sharded frontends read it on every arrival while the
// operator reloads config.
type Registry struct {
	snap atomic.Pointer[snapshot]
}

func makeSnapshot(ts []Tenant, version uint64) *snapshot {
	s := &snapshot{
		list:    append([]Tenant(nil), ts...),
		byName:  make(map[string]int, len(ts)),
		version: version,
	}
	for i, t := range s.list {
		s.byName[t.Name] = i
		s.weight += t.Weight
		s.rate += t.RateQPS
	}
	return s
}

// NewRegistry validates the tenant set and builds a registry over it.
func NewRegistry(ts []Tenant) (*Registry, error) {
	if err := Validate(ts); err != nil {
		return nil, err
	}
	r := &Registry{}
	r.snap.Store(makeSnapshot(ts, 1))
	return r, nil
}

// LoadFile reads, parses, and validates a tenant config file into a
// registry.
func LoadFile(path string) (*Registry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	ts, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return NewRegistry(ts)
}

// Lookup returns the tenant by name from the current generation.
func (r *Registry) Lookup(name string) (Tenant, bool) {
	s := r.snap.Load()
	i, ok := s.byName[name]
	if !ok {
		return Tenant{}, false
	}
	return s.list[i], true
}

// Resolve maps a request's tenant label to a registered tenant: an empty
// label falls back to DefaultName when it is registered.
func (r *Registry) Resolve(name string) (Tenant, bool) {
	if name == "" {
		name = DefaultName
	}
	return r.Lookup(name)
}

// All returns the current generation's tenants in config order. The
// returned slice is shared and must not be mutated.
func (r *Registry) All() []Tenant { return r.snap.Load().list }

// Version returns the current generation number; it increments on every
// successful Reload, so per-tenant caches know when to rebuild.
func (r *Registry) Version() uint64 { return r.snap.Load().version }

// TotalWeight returns the sum of tenant weights.
func (r *Registry) TotalWeight() float64 { return r.snap.Load().weight }

// TotalRate returns the sum of contracted tenant rates in QPS — the
// plane's default admission capacity.
func (r *Registry) TotalRate() float64 { return r.snap.Load().rate }

// Reload validates and atomically publishes a replacement tenant set.
// Readers mid-decision keep the generation they loaded; the next arrival
// sees the new one.
func (r *Registry) Reload(ts []Tenant) error {
	if err := Validate(ts); err != nil {
		return err
	}
	for {
		old := r.snap.Load()
		next := makeSnapshot(ts, old.version+1)
		if r.snap.CompareAndSwap(old, next) {
			return nil
		}
	}
}

// ReloadFile re-reads a config file and publishes it; on any error the
// previous tenant set stays live.
func (r *Registry) ReloadFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	ts, err := Parse(data)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return r.Reload(ts)
}

// Names returns the current tenant names sorted alphabetically (stable
// ordering for printed tables and tests).
func (r *Registry) Names() []string {
	list := r.All()
	names := make([]string, len(list))
	for i, t := range list {
		names[i] = t.Name
	}
	sort.Strings(names)
	return names
}

// Single wraps one tenant as a registry — the N=1 special case every
// pre-existing single-tenant path reduces to.
func Single(name string, sloSec, rateQPS float64) (*Registry, error) {
	return NewRegistry([]Tenant{{Name: name, SLOMS: sloSec * 1000, Weight: 1, RateQPS: rateQPS}})
}
