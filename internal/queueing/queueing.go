// Package queueing provides the classical queueing-theory estimates the
// inference-serving literature leans on ([3], [18], §8): Erlang-C waiting
// probabilities, M/M/c and M/D/c waiting times, response-latency tails, and
// fluid capacity bounds. The ModelSwitching baseline profiles response
// latencies empirically (as the paper does); this package supplies the
// analytic counterpart, and its agreement with the discrete-event simulator
// is itself a correctness cross-check of the simulator (inference service
// times are deterministic, so a batch-1 fixed-model run is exactly M/D/c).
package queueing

import (
	"fmt"
	"math"

	"ramsis/internal/profile"
)

// ErlangC returns the probability that an arriving query must wait in an
// M/M/c system with offered load a = λ/μ (Erlang's C formula). It returns 1
// when the system is unstable (a >= c).
func ErlangC(c int, a float64) float64 {
	if c < 1 || a < 0 {
		panic(fmt.Sprintf("queueing: invalid ErlangC(%d, %v)", c, a))
	}
	if a == 0 {
		return 0
	}
	if a >= float64(c) {
		return 1
	}
	// Iterative Erlang-B, then convert to C.
	b := 1.0
	for k := 1; k <= c; k++ {
		b = a * b / (float64(k) + a*b)
	}
	rho := a / float64(c)
	return b / (1 - rho*(1-b))
}

// MMcWaitMean returns the mean queueing delay of M/M/c with arrival rate
// lambda and per-server service rate mu. +Inf when unstable.
func MMcWaitMean(c int, lambda, mu float64) float64 {
	a := lambda / mu
	if a >= float64(c) {
		return math.Inf(1)
	}
	return ErlangC(c, a) / (float64(c)*mu - lambda)
}

// MDcWaitMean returns the mean queueing delay of M/D/c (deterministic
// service time d) via the standard half-of-M/M/c heavy-traffic
// approximation, exact for c = 1 (Pollaczek–Khinchine).
func MDcWaitMean(c int, lambda, d float64) float64 {
	return MMcWaitMean(c, lambda, 1/d) / 2
}

// WaitTail returns P[queueing delay > t] for M/M/c under the exponential
// tail P(W > t) = C(c, a)·e^{-(cμ−λ)t}; for deterministic service the same
// decay rate applies asymptotically with the M/D/c mean correction folded
// into the prefactor.
func WaitTail(c int, lambda, mu, t float64) float64 {
	a := lambda / mu
	if a >= float64(c) {
		return 1
	}
	return ErlangC(c, a) * math.Exp(-(float64(c)*mu-lambda)*t)
}

// ResponseQuantile returns an estimate of the q-th quantile (0 < q < 1) of
// the response latency (wait + deterministic service d) in M/D/c, inverting
// the exponential waiting tail with the M/D/c halving.
func ResponseQuantile(c int, lambda, d, q float64) float64 {
	if q <= 0 || q >= 1 {
		panic(fmt.Sprintf("queueing: invalid quantile %v", q))
	}
	mu := 1 / d
	a := lambda / mu
	if a >= float64(c) {
		return math.Inf(1)
	}
	pWait := ErlangC(c, a) / 2 // M/D/c halving applied to the mass that waits
	if pWait <= 1-q {
		return d // the quantile lands in the no-wait mass
	}
	decay := (float64(c)*mu - lambda) * 2 // halved mean => doubled decay
	return d + math.Log(pWait/(1-q))/decay
}

// FluidCapacity is the throughput upper bound of a worker pool running one
// model with adaptive batching capped at latency maxLat: workers times the
// model's best within-maxLat throughput.
func FluidCapacity(p profile.Profile, workers int, maxLat float64) float64 {
	return float64(workers) * p.ThroughputWithin(maxLat)
}

// StableLoad returns the largest arrival rate (QPS) at which the estimated
// q-th response-latency quantile of batch-1 M/D/c service stays within slo,
// found by bisection. It is the analytic sibling of the ModelSwitching
// offline profiler for batch size 1.
func StableLoad(p profile.Profile, workers int, slo, q float64) float64 {
	d := p.BatchLatency(1)
	if d > slo {
		return 0
	}
	lo, hi := 0.0, float64(workers)/d
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if mid == 0 {
			break
		}
		if ResponseQuantile(workers, mid, d, q) <= slo {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
