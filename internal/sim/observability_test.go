package sim

import (
	"bytes"
	"fmt"
	"testing"

	"ramsis/internal/admit"
	"ramsis/internal/core"
	"ramsis/internal/telemetry"
	"ramsis/internal/trace"
)

// TestSimTracingFragments runs a small deterministic workload with the
// observability hooks attached and checks the sim-side contract: one
// fragment per served query with the deterministic "sim-<id>" trace ID,
// batch_wait and inference spans, and an attached select decision with
// both predicted and realized latency populated.
func TestSimTracingFragments(t *testing.T) {
	ps := imageProfiles()
	var jsonl bytes.Buffer
	e := NewEngine(ps, 0.150, 1, Deterministic{}, &FixedModel{Model: 0, MaxBatch: 8}, 1)
	e.Telemetry = telemetry.NewRegistry()
	e.Traces = telemetry.NewTraceBuffer(0)
	e.TraceWriter = telemetry.NewTraceWriter(&jsonl)
	e.Decisions = telemetry.NewDecisionBuffer(0)

	arrivals := []float64{0, 0.001, 0.002, 0.5}
	m := e.Run(arrivals)
	if m.Served != len(arrivals) {
		t.Fatalf("served = %d, want %d", m.Served, len(arrivals))
	}

	frags := e.Traces.Snapshot()
	if len(frags) != len(arrivals) {
		t.Fatalf("ringed %d fragments, want one per served query", len(frags))
	}
	seen := map[string]bool{}
	for _, qt := range frags {
		if want := simTraceID(qt.ID); qt.TraceID != want {
			t.Errorf("query %d trace ID %q, want deterministic %q", qt.ID, qt.TraceID, want)
		}
		seen[qt.TraceID] = true
		if qt.Process != "sim" {
			t.Errorf("fragment process %q, want sim", qt.Process)
		}
		if qt.Model == "" || qt.Batch == 0 {
			t.Errorf("fragment missing dispatch fields: %+v", qt)
		}
		stages := map[string]bool{}
		for _, sp := range qt.Spans {
			stages[sp.Stage] = true
		}
		if !stages[telemetry.StageBatchWait] || !stages[telemetry.StageInference] {
			t.Errorf("fragment spans %v, want batch_wait and inference", stages)
		}
		if qt.Decision == nil {
			t.Fatalf("fragment %d has no attached decision", qt.ID)
		}
		if qt.Decision.Kind != telemetry.DecisionSelect || qt.Decision.Model == "" {
			t.Errorf("decision = %+v, want a select with a model", qt.Decision)
		}
		if qt.Decision.PredictedSec <= 0 || qt.Decision.RealizedSec <= 0 {
			t.Errorf("decision latencies predicted=%v realized=%v, want both populated",
				qt.Decision.PredictedSec, qt.Decision.RealizedSec)
		}
	}
	if len(seen) != len(arrivals) {
		t.Errorf("%d distinct trace IDs, want %d", len(seen), len(arrivals))
	}

	// The JSONL stream carries the same fragments.
	fromFile, err := telemetry.ReadTraces(&jsonl)
	if err != nil {
		t.Fatal(err)
	}
	if len(fromFile) != len(arrivals) {
		t.Errorf("JSONL stream has %d fragments, want %d", len(fromFile), len(arrivals))
	}

	// Select decisions also land in the shared decision ring.
	selects := 0
	for _, d := range e.Decisions.Snapshot() {
		if d.Kind == telemetry.DecisionSelect {
			selects++
			if d.TraceID == "" {
				t.Errorf("select decision missing trace ID: %+v", d)
			}
		}
	}
	if selects == 0 {
		t.Error("decision ring has no select decisions")
	}

	// Every query met its deadline, so the default tenant's SLO tracker
	// reads full attainment and zero burn.
	tr := e.SLOTracker("default")
	if tr == nil {
		t.Fatal("engine has no SLO tracker for the default tenant")
	}
	now := tr.LastNow()
	if att := tr.Attainment(now, 60); att != 1 {
		t.Errorf("attainment = %v, want 1", att)
	}
	if burn := tr.BurnRate(now, 60); burn != 0 {
		t.Errorf("burn rate = %v, want 0", burn)
	}

	// Tracing switches the latency histogram to exemplar observation; the
	// exposition must link buckets to trace IDs.
	var exp bytes.Buffer
	e.Telemetry.WritePrometheus(&exp)
	if !bytes.Contains(exp.Bytes(), []byte(`# {trace_id="sim-`)) {
		t.Error("exposition lacks latency bucket exemplars linking to trace IDs")
	}
}

// TestSimShedTracing forces the admission controller to shed and checks
// the shed path's observability: a shed decision record plus a trace
// fragment marked with the shed stage and error.
func TestSimShedTracing(t *testing.T) {
	ps := imageProfiles()
	e := NewEngine(ps, 0.150, 1, Deterministic{}, &FixedModel{Model: 0, MaxBatch: 8}, 1)
	e.Admit = admit.Cap{Limit: 1, Est: core.NewWaitEstimator(ps, 1)}
	e.Traces = telemetry.NewTraceBuffer(0)
	e.Decisions = telemetry.NewDecisionBuffer(0)

	// A simultaneous burst overruns the cap of one outstanding query.
	m := e.Run([]float64{0, 0, 0, 0})
	if m.Shed == 0 {
		t.Fatal("cap admission shed nothing; fixture no longer overruns")
	}

	shedFrags := 0
	for _, qt := range e.Traces.Snapshot() {
		if qt.Error != "shed" {
			continue
		}
		shedFrags++
		if qt.TraceID != simTraceID(qt.ID) || qt.Process != "sim" {
			t.Errorf("shed fragment missing trace context: %+v", qt)
		}
		if len(qt.Spans) != 1 || qt.Spans[0].Stage != telemetry.StageShed {
			t.Errorf("shed fragment spans = %+v, want single shed span", qt.Spans)
		}
	}
	if shedFrags != m.Shed {
		t.Errorf("%d shed fragments, want one per shed query (%d)", shedFrags, m.Shed)
	}

	kinds := map[string]int{}
	for _, d := range e.Decisions.Snapshot() {
		kinds[d.Kind]++
		if d.Kind == telemetry.DecisionShed && d.Outcome != "shed" {
			t.Errorf("shed decision outcome %q, want shed", d.Outcome)
		}
	}
	if kinds[telemetry.DecisionShed] != m.Shed {
		t.Errorf("%d shed decisions, want %d", kinds[telemetry.DecisionShed], m.Shed)
	}
	if kinds[telemetry.DecisionAdmit] == 0 {
		t.Error("no admit decisions recorded alongside the sheds")
	}
}

// TestSimTracingIsDeterminismNeutral guards the invariant the trace-ID
// derivation exists for: observability must not consume the engine's rng.
// A stochastic latency model draws from the noise stream every dispatch,
// so any hook that also drew from it would shift every subsequent sample
// and diverge the metrics between traced and untraced runs.
func TestSimTracingIsDeterminismNeutral(t *testing.T) {
	run := func(traced bool) Metrics {
		ps := imageProfiles()
		e := NewEngine(ps, 0.150, 2, Stochastic{StdDev: 0.010}, &FixedModel{Model: 0, MaxBatch: 8}, 7)
		e.CollectLatencies = true
		if traced {
			e.Telemetry = telemetry.NewRegistry()
			e.Traces = telemetry.NewTraceBuffer(0)
			e.Decisions = telemetry.NewDecisionBuffer(0)
		}
		return e.Run(trace.PoissonArrivals(trace.Constant(200, 1), 3))
	}
	a, b := run(false), run(true)
	if a.Served != b.Served || a.Violations != b.Violations || a.Shed != b.Shed {
		t.Fatalf("traced run diverged: untraced %+v vs traced %+v", a, b)
	}
	if len(a.Latencies) != len(b.Latencies) {
		t.Fatalf("latency count diverged: %d vs %d", len(a.Latencies), len(b.Latencies))
	}
	for i := range a.Latencies {
		if a.Latencies[i] != b.Latencies[i] {
			t.Fatalf("latency %d diverged: %v vs %v — tracing consumed the rng",
				i, a.Latencies[i], b.Latencies[i])
		}
	}
	if fmt.Sprintf("%.12f", a.SatAccSum) != fmt.Sprintf("%.12f", b.SatAccSum) {
		t.Errorf("satisfied-accuracy sum diverged: %v vs %v", a.SatAccSum, b.SatAccSum)
	}
}
