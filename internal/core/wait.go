package core

import "ramsis/internal/profile"

// WaitEstimator converts a queue backlog into estimated time from the
// profiled latency tables, for admission control (internal/admit). The
// estimate is deliberately optimistic — it assumes every worker drains the
// backlog with the fastest model at its best profiled throughput, and that
// the candidate itself runs on the fastest model at batch 1 — so a query
// the estimator calls unmeetable was unmeetable under any schedule the
// profiles permit. Deadline shedding built on it never rejects work an
// ideal scheduler could have served.
//
// The zero value estimates zero wait everywhere (useful in tests); build
// real ones with NewWaitEstimator.
type WaitEstimator struct {
	// perQuery is the optimistic seconds of service per backlog query:
	// 1 / (workers × best throughput over all models and batch sizes).
	perQuery float64
	// service is the candidate's own best-case inference seconds: the
	// fastest model's batch-1 p95 latency.
	service float64
}

// NewWaitEstimator derives an estimator for a cluster of `workers` workers
// sharing the model set.
func NewWaitEstimator(models profile.Set, workers int) WaitEstimator {
	if workers < 1 {
		workers = 1
	}
	bestTP := 0.0
	service := 0.0
	for _, p := range models.Profiles {
		if tp := p.Throughput(); tp > bestTP {
			bestTP = tp
		}
		if l := p.BatchLatency(1); service == 0 || l < service {
			service = l
		}
	}
	if bestTP <= 0 {
		return WaitEstimator{service: service}
	}
	return WaitEstimator{perQuery: 1 / (bestTP * float64(workers)), service: service}
}

// Wait returns the estimated seconds until a query arriving behind
// `outstanding` queued or in-flight queries begins service.
func (w WaitEstimator) Wait(outstanding int) float64 {
	if outstanding <= 0 {
		return 0
	}
	return float64(outstanding) * w.perQuery
}

// Service returns the candidate's own best-case inference seconds.
func (w WaitEstimator) Service() float64 { return w.service }
