package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"ramsis/internal/profile"
)

// MarshalJSON-compatible persistence: a Policy serializes to JSON with its
// grid and per-state choices (the artifact stores policies as JSON
// state-to-action dictionaries). The state space is reconstructed on load
// from the saved knobs plus the caller-provided model set.

// Save writes the policy as JSON to path, creating parent directories.
func (p *Policy) Save(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(p, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadPolicy reads a policy from path and rebinds it to the given model set
// (which must contain the models the policy references).
func LoadPolicy(path string, models profile.Set) (*Policy, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var p Policy
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("core: decode policy %s: %w", path, err)
	}
	if err := p.bind(models); err != nil {
		return nil, fmt.Errorf("core: policy %s: %w", path, err)
	}
	return &p, nil
}

// bind reconstructs the unexported state space from the serialized fields.
func (p *Policy) bind(models profile.Set) error {
	cfg := Config{
		Models:          models,
		SLO:             p.SLO,
		Workers:         p.Workers,
		Batching:        p.Batching,
		Disc:            p.Disc,
		D:               p.D,
		MaxQueue:        p.MaxQueue,
		NoParetoPruning: !p.Pruned,
	}.withDefaults()
	actionModels := models
	if p.Pruned {
		actionModels = models.ParetoFront()
	}
	sp := &space{cfg: cfg, models: actionModels, grid: p.Grid}
	if sp.numStates() != len(p.Choices) {
		return fmt.Errorf("state count %d does not match %d choices", sp.numStates(), len(p.Choices))
	}
	// Re-resolve model indices by name against the bound set.
	for i, c := range p.Choices {
		if c.Arrival {
			continue
		}
		found := false
		for mi, m := range sp.models.Profiles {
			if m.Name == c.Model {
				p.Choices[i].ModelIdx = mi
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("model %q not in bound set", c.Model)
		}
	}
	p.space = sp
	return nil
}
