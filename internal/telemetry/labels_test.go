package telemetry

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestEscapeLabelValue(t *testing.T) {
	cases := []struct{ in, want string }{
		{"plain", "plain"},
		{`back\slash`, `back\\slash`},
		{`"quoted"`, `\"quoted\"`},
		{"line\nfeed", `line\nfeed`},
		{"café-中文", "café-中文"}, // UTF-8 passes through verbatim, never \u-escaped
		{`mix"\` + "\n", `mix\"\\\n`},
	}
	for _, c := range cases {
		if got := EscapeLabelValue(c.in); got != c.want {
			t.Errorf("EscapeLabelValue(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestCounterVecSharesRegistrySeries(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec(MetricTenantQueries, "tenant")
	v.With("acme").Add(2)
	v.With("acme").Inc()
	if got := r.Counter(MetricTenantQueries, "tenant", "acme").Value(); got != 3 {
		t.Errorf("vec and direct lookup disagree: %v, want 3", got)
	}
	// A second vec over the same family sees the same series.
	if got := r.CounterVec(MetricTenantQueries, "tenant").With("acme").Value(); got != 3 {
		t.Errorf("second vec = %v, want 3", got)
	}
}

func TestGaugeVecFixedPairs(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec(MetricTenantRate, "tenant", "shard", "2")
	v.With("acme").Set(42)
	if got := r.Gauge(MetricTenantRate, "shard", "2", "tenant", "acme").Value(); got != 42 {
		t.Errorf("fixed-pair series = %v, want 42", got)
	}
}

func TestVecConcurrentUse(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec(MetricTenantShed, "tenant")
	tenants := []string{"a", "b", "c", "d"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				v.With(tenants[(g+i)%len(tenants)]).Inc()
				if i%500 == 0 {
					var b bytes.Buffer
					r.WritePrometheus(&b)
				}
			}
		}(g)
	}
	wg.Wait()
	total := 0.0
	for _, tn := range tenants {
		total += v.With(tn).Value()
	}
	if total != 8*2000 {
		t.Errorf("total = %v, want %d", total, 8*2000)
	}
}

// TestLabelExpositionGolden locks label escaping and output ordering against
// a golden file: series within a family are sorted by rendered label set,
// label pairs within a series by label name, and escape sequences follow the
// Prometheus text format (\\, \", \n only — UTF-8 stays verbatim).
// Regenerate with UPDATE_GOLDEN=1 go test ./internal/telemetry.
func TestLabelExpositionGolden(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec(MetricTenantQueries, "tenant")
	v.With("zeta").Add(1)
	v.With("acme").Add(2)
	v.With(`quo"te`).Add(3)
	v.With(`back\slash`).Add(4)
	v.With("line\nfeed").Add(5)
	v.With("café-中文").Add(6)
	r.Help(MetricTenantQueries, "Served queries by tenant.")
	g := r.GaugeVec(MetricTenantDegradeLevel, "tenant", "shard", "0")
	g.With("acme").Set(1)
	g.With("zeta").Set(2)

	var b bytes.Buffer
	r.WritePrometheus(&b)
	golden := filepath.Join("testdata", "labels.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, b.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b.Bytes(), want) {
		t.Errorf("exposition mismatch\n--- got ---\n%s--- want ---\n%s", b.Bytes(), want)
	}
	// Exposition must be byte-stable across writes (map iteration must not
	// leak into the output order).
	var again bytes.Buffer
	r.WritePrometheus(&again)
	if !bytes.Equal(b.Bytes(), again.Bytes()) {
		t.Error("exposition not stable across consecutive writes")
	}
}
