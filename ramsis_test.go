package ramsis

import (
	"math"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{Workers: 4}); err == nil {
		t.Error("missing SLO accepted")
	}
	if _, err := New(Options{SLOMillis: 150}); err == nil {
		t.Error("missing workers accepted")
	}
	s, err := New(Options{SLOMillis: 150, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if s.Models.Task != "image" {
		t.Errorf("default models = %s, want image", s.Models.Task)
	}
	if s.SLO != 0.150 {
		t.Errorf("SLO = %v, want 0.150", s.SLO)
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	s, err := New(Options{SLOMillis: 150, Workers: 8, D: 50})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PrecomputePolicies(250); err != nil {
		t.Fatal(err)
	}
	pol, err := s.Policy(250)
	if err != nil {
		t.Fatal(err)
	}
	if pol.ExpectedAccuracy <= 0 {
		t.Fatal("policy has no accuracy expectation")
	}
	m := s.SimulateConstant(250, 10, 1)
	if m.Served == 0 || m.Unserved != 0 {
		t.Fatalf("metrics %+v", m)
	}
	if math.Abs(m.AccuracyPerSatisfiedQuery()-pol.ExpectedAccuracy) > 0.05 {
		t.Errorf("simulated accuracy %.4f far from expectation %.4f",
			m.AccuracyPerSatisfiedQuery(), pol.ExpectedAccuracy)
	}
}

func TestFacadeTraceRun(t *testing.T) {
	s, err := New(Options{Models: TextModels(), SLOMillis: 100, Workers: 4, D: 50})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PrecomputePolicies(200, 400, 600); err != nil {
		t.Fatal(err)
	}
	tr := TwitterTrace().Scale(0.1).Truncate(30) // ~160-390 QPS for 30 s
	m := s.SimulateTrace(tr, 2)
	if m.Served == 0 {
		t.Fatal("nothing served")
	}
	if vr := m.ViolationRate(); vr > 0.05 {
		t.Errorf("violation rate %.4f above 5%%", vr)
	}
}

func TestFacadeGammaArrivals(t *testing.T) {
	s, err := New(Options{SLOMillis: 150, Workers: 4, D: 50, GammaShape: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PrecomputePolicies(100); err != nil {
		t.Fatal(err)
	}
	pol, _ := s.Policy(100)
	if pol.ExpectedAccuracy <= 0 {
		t.Error("gamma-arrival policy invalid")
	}
}

func TestPrecomputePolicyLadder(t *testing.T) {
	s, err := New(Options{SLOMillis: 150, Workers: 4, D: 25})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PrecomputePolicyLadder(50, 200); err != nil {
		t.Fatal(err)
	}
	if len(s.Policies()) < 2 {
		t.Errorf("ladder has %d policies", len(s.Policies()))
	}
}

func TestFacadeVerify(t *testing.T) {
	s, err := New(Options{SLOMillis: 150, Workers: 6, D: 50})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PrecomputePolicies(180); err != nil {
		t.Fatal(err)
	}
	pol, _ := s.Policy(180)
	m := s.Verify(pol, 15, 2)
	if m.AccuracyPerSatisfiedQuery() < pol.ExpectedAccuracy-0.02 {
		t.Errorf("verify accuracy %v below bound %v", m.AccuracyPerSatisfiedQuery(), pol.ExpectedAccuracy)
	}
	if m.ViolationRate() > pol.ExpectedViolation+0.02 {
		t.Errorf("verify violations %v above bound %v", m.ViolationRate(), pol.ExpectedViolation)
	}
}
