package serve

import (
	"fmt"

	"ramsis/internal/adapt"
)

// AdaptiveSelector adapts an adapt.Adapter to the online selector
// interface: every selection feeds the monitored load to the drift
// detector, and the policy lookup goes through the adapter's atomically
// published set. The adapter should be configured with Background set —
// the selector runs on the dispatch path, and a confirmed drift must start
// its re-solve on a goroutine rather than stall the worker loop; dispatch
// keeps using the old policy until the solved one is hot-swapped in.
func AdaptiveSelector(a *adapt.Adapter) SelectFunc {
	return func(now, load float64, n int, slack float64) (string, int) {
		a.Observe(now, load)
		pol := a.PolicyFor(load)
		if pol == nil {
			panic(fmt.Sprintf("serve: adapter has no policy for load %v", load))
		}
		c := pol.Select(n, slack)
		b := c.Batch
		if b > n {
			b = n
		}
		return c.Model, b
	}
}
