package sim

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"ramsis/internal/core"
	"ramsis/internal/llm"
	"ramsis/internal/stats"
	"ramsis/internal/telemetry"
)

// TokenQuery is one token-annotated query: a prompt of Prefill tokens to
// ingest and Decode output tokens to generate.
type TokenQuery struct {
	ID      int
	Arrival float64
	Prefill int
	Decode  int
}

// Tokens returns the query's total token footprint — its KV reservation and
// its contribution to a worker's outstanding load.
func (q TokenQuery) Tokens() int { return q.Prefill + q.Decode }

// ModelSelector picks the step model a worker's next engine step should run.
// It is consulted at every step boundary with the worker's observable state:
// queued is the query count (waiting + running), outstandingTokens the
// unfinished token load, kvUsage the KV-cache occupancy fraction, and
// headSlack the oldest query's remaining deadline headroom in seconds.
// Returning a negative index keeps the current model.
type ModelSelector interface {
	SelectModel(queued, outstandingTokens int, kvUsage, headSlack float64) int
	Name() string
}

// FixedSelector always selects one model — the no-selection baseline.
type FixedSelector int

// SelectModel returns the fixed index.
func (s FixedSelector) SelectModel(int, int, float64, float64) int { return int(s) }

// Name implements ModelSelector.
func (s FixedSelector) Name() string { return "fixed" }

// LLMPolicySelector drives selection from an offline-generated token-stream
// policy (core.GenerateLLM): the worker's bucketed outstanding-token load is
// the policy state.
type LLMPolicySelector struct {
	pol *core.LLMPolicy
	idx []int // policy model index -> engine model index
}

// NewLLMPolicySelector maps the policy's (pruned) model set onto the
// engine's; every policy model must exist in models.
func NewLLMPolicySelector(pol *core.LLMPolicy, models llm.Set) (*LLMPolicySelector, error) {
	pm := pol.Models()
	idx := make([]int, pm.Len())
	for i, m := range pm.Models {
		j := models.IndexByName(m.Name)
		if j < 0 {
			return nil, fmt.Errorf("sim: policy model %q not in engine set", m.Name)
		}
		idx[i] = j
	}
	return &LLMPolicySelector{pol: pol, idx: idx}, nil
}

// SelectModel implements ModelSelector via the token-bucket policy lookup.
func (s *LLMPolicySelector) SelectModel(_, outstandingTokens int, _, _ float64) int {
	c := s.pol.Select(outstandingTokens)
	if c.Arrival {
		return -1
	}
	return s.idx[c.ModelIdx]
}

// Name implements ModelSelector.
func (s *LLMPolicySelector) Name() string { return "ramsis-token" }

// ScalarPolicySelector drives selection from a scalar queue-state policy
// (core.Generate over llm.Set.ScalarProfiles) — the profile-table baseline
// the token-aware policy is compared against. It sees query count and head
// slack only; token composition and KV state are invisible to it.
type ScalarPolicySelector struct {
	pol *core.Policy
	idx map[string]int
}

// NewScalarPolicySelector maps the scalar policy's model names onto the
// engine's step-model set.
func NewScalarPolicySelector(pol *core.Policy, models llm.Set) (*ScalarPolicySelector, error) {
	idx := make(map[string]int, models.Len())
	for _, name := range pol.Models() {
		j := models.IndexByName(name)
		if j < 0 {
			return nil, fmt.Errorf("sim: policy model %q not in engine set", name)
		}
		idx[name] = j
	}
	return &ScalarPolicySelector{pol: pol, idx: idx}, nil
}

// SelectModel implements ModelSelector via the scalar (n, slack) lookup.
func (s *ScalarPolicySelector) SelectModel(queued, _ int, _ float64, headSlack float64) int {
	c := s.pol.Select(queued, headSlack)
	if c.Arrival {
		return -1
	}
	return s.idx[c.Model]
}

// Name implements ModelSelector.
func (s *ScalarPolicySelector) Name() string { return "ramsis-scalar" }

// LLMMetrics extends the scalar run metrics with the token-level series:
// time-to-first-token and time-between-tokens percentiles, step and token
// counts, model switches, and peak KV occupancy. Decisions counts engine
// steps (one selection decision each).
type LLMMetrics struct {
	Metrics
	// TTFT percentiles: arrival to first generated token, in modeled
	// seconds. Exact when CollectLatencies is set, histogram-derived
	// otherwise.
	TTFTP50, TTFTP95, TTFTP99 float64
	// TBT percentiles: gap between consecutive decode tokens of one query.
	TBTP50, TBTP95, TBTP99 float64
	// TTFTs and TBTs hold every observation when collection was enabled.
	TTFTs, TBTs []float64

	Steps         int
	ModelSwitches int
	// PeakKVUsage is the maximum KV occupancy fraction any worker reached.
	PeakKVUsage float64
	// PrefillTokens and DecodeTokens count scheduled work over the run.
	PrefillTokens int64
	DecodeTokens  int64
}

// llmSeq is one admitted query's progress through the running batch.
type llmSeq struct {
	q            TokenQuery
	admitAt      float64
	prefillLeft  int
	decodeLeft   int
	kvHeld       int // tokens currently resident in the KV cache
	reserve      int // full footprint reserved at admission
	firstTokenAt float64
	lastTokenAt  float64
	// per-step schedule, consumed by completeStep
	prefillChunk    int
	decodeScheduled bool
}

// llmWorker is one continuous-batching worker: a waiting queue, a running
// batch, and KV-cache accounting against the serving model's capacity.
type llmWorker struct {
	id         int
	model      int // index into the engine's model set
	draining   bool
	waiting    []TokenQuery
	running    []*llmSeq
	kvUsed     int // tokens resident
	kvReserved int // tokens reserved by admitted sequences
	outTok     int // outstanding tokens over waiting + running
	busy       bool
	stepEnd    float64
}

// llmSeries caches the registry series the LLM engine updates per step.
type llmSeries struct {
	queries, violations, satAcc *telemetry.Counter
	latency, batchWait          *telemetry.Histogram
	ttft, tbt, step             *telemetry.Histogram
	prefillTokens, decodeTokens *telemetry.Counter
	switches                    *telemetry.Counter
	steps, modelQueries         *telemetry.CounterVec
	kv                          []*telemetry.Gauge
	reg                         *telemetry.Registry
}

func newLLMSeries(reg *telemetry.Registry, workers int) *llmSeries {
	reg.Help(telemetry.MetricLLMTTFT, "Time to first token in modeled seconds.")
	reg.Help(telemetry.MetricLLMTBT, "Time between decode tokens in modeled seconds.")
	reg.Help(telemetry.MetricLLMStepSeconds, "Continuous-batching step latency in modeled seconds.")
	reg.Help(telemetry.MetricLLMKVUsage, "KV-cache occupancy fraction per worker.")
	s := &llmSeries{
		queries:       reg.Counter(telemetry.MetricQueries),
		violations:    reg.Counter(telemetry.MetricViolations),
		satAcc:        reg.Counter(telemetry.MetricSatAccuracySum),
		latency:       reg.Histogram(telemetry.MetricLatencySeconds),
		batchWait:     reg.Histogram(telemetry.MetricStageSeconds, "stage", telemetry.StageBatchWait),
		ttft:          reg.Histogram(telemetry.MetricLLMTTFT),
		tbt:           reg.Histogram(telemetry.MetricLLMTBT),
		step:          reg.Histogram(telemetry.MetricLLMStepSeconds),
		prefillTokens: reg.Counter(telemetry.MetricLLMTokens, "kind", "prefill"),
		decodeTokens:  reg.Counter(telemetry.MetricLLMTokens, "kind", "decode"),
		switches:      reg.Counter(telemetry.MetricLLMModelSwitches),
		steps:         reg.CounterVec(telemetry.MetricLLMSteps, "model"),
		modelQueries:  reg.CounterVec(telemetry.MetricModelQueries, "model"),
		reg:           reg,
	}
	s.kv = make([]*telemetry.Gauge, workers)
	for w := range s.kv {
		s.kv[w] = reg.Gauge(telemetry.MetricLLMKVUsage, "worker", strconv.Itoa(w))
	}
	return s
}

// LLMEngine is the token-level discrete-event simulator: continuous-batching
// workers that admit waiting queries into a running batch at every step
// boundary, schedule decode-first under the model's token budget, chunk
// prefills across steps, and gate admission on KV-cache reservations. A
// query's end-to-end latency is its queue wait plus the step times it rides
// through; TTFT and TBT fall out of the same step walk.
type LLMEngine struct {
	Models   llm.Set
	SLO      float64
	Workers  int
	Selector ModelSelector
	// KVCap, when > 0, overrides every model's KV capacity in tokens.
	KVCap int
	// CollectLatencies records every latency, TTFT, and TBT observation for
	// exact percentiles.
	CollectLatencies bool
	// Telemetry, when set, exposes the run's series (the same names
	// cmd/serve's LLM workers export).
	Telemetry *telemetry.Registry
	// Traces and TraceWriter mirror the scalar engine's trace sinks.
	Traces      *telemetry.TraceBuffer
	TraceWriter *telemetry.TraceWriter

	models   llm.Set
	workers  []*llmWorker
	metrics  LLMMetrics
	latHist  *telemetry.Histogram
	ttftHist *telemetry.Histogram
	tbtHist  *telemetry.Histogram
	tel      *llmSeries
}

// NewLLMEngine builds a token-level simulator over the step-model set.
func NewLLMEngine(models llm.Set, slo float64, workers int, sel ModelSelector) *LLMEngine {
	if workers < 1 {
		panic(fmt.Sprintf("sim: invalid worker count %d", workers))
	}
	return &LLMEngine{Models: models, SLO: slo, Workers: workers, Selector: sel}
}

func (e *LLMEngine) tracing() bool { return e.Traces != nil || e.TraceWriter != nil }

func (e *LLMEngine) recordTrace(qt telemetry.QueryTrace) {
	if e.Traces != nil {
		e.Traces.Add(qt)
	}
	if e.TraceWriter != nil {
		_ = e.TraceWriter.Write(qt)
	}
}

// Run replays the token-annotated queries through the continuous-batching
// workers and returns the run's metrics. Queries are processed in arrival
// order; arrivals route to the worker with the least outstanding token load.
func (e *LLMEngine) Run(queries []TokenQuery) LLMMetrics {
	if err := e.Models.Validate(); err != nil {
		panic(fmt.Sprintf("sim: invalid model set: %v", err))
	}
	e.models = e.Models.WithKVCap(e.KVCap)
	e.metrics = LLMMetrics{Metrics: Metrics{ModelCounts: map[string]int{}}}
	e.latHist = telemetry.NewHistogram(telemetry.DefaultLatencyBuckets())
	e.ttftHist = telemetry.NewHistogram(telemetry.DefaultLatencyBuckets())
	e.tbtHist = telemetry.NewHistogram(telemetry.DefaultLatencyBuckets())
	if e.Telemetry != nil {
		e.tel = newLLMSeries(e.Telemetry, e.Workers)
	}
	start := e.models.MostAccurate()
	e.workers = make([]*llmWorker, e.Workers)
	for w := range e.workers {
		e.workers[w] = &llmWorker{id: w, model: start, stepEnd: math.Inf(1)}
	}

	qs := append([]TokenQuery(nil), queries...)
	sort.SliceStable(qs, func(i, j int) bool { return qs[i].Arrival < qs[j].Arrival })

	qi := 0
	for {
		wmin, tmin := -1, math.Inf(1)
		for w, lw := range e.workers {
			if lw.busy && lw.stepEnd < tmin {
				wmin, tmin = w, lw.stepEnd
			}
		}
		if qi < len(qs) && qs[qi].Arrival <= tmin {
			e.route(qs[qi])
			qi++
			continue
		}
		if wmin < 0 {
			break
		}
		lw := e.workers[wmin]
		e.completeStep(lw, tmin)
		e.startStep(lw, tmin)
	}
	e.finish()
	return e.metrics
}

// route clamps the query's token lengths and hands it to the worker with
// the least outstanding token load (a join-shortest-token-queue balancer;
// queue length alone would under-weigh long-prefill arrivals).
func (e *LLMEngine) route(q TokenQuery) {
	q.Prefill = max(q.Prefill, 1)
	q.Decode = max(q.Decode, 1)
	best := e.workers[0]
	for _, lw := range e.workers[1:] {
		if lw.outTok < best.outTok {
			best = lw
		}
	}
	best.waiting = append(best.waiting, q)
	best.outTok += q.Tokens()
	if !best.busy {
		e.startStep(best, q.Arrival)
	}
}

// drop rejects a query whose KV footprint can never fit the serving model.
func (e *LLMEngine) drop(lw *llmWorker, q TokenQuery) {
	e.metrics.Dropped++
	if e.tracing() {
		e.recordTrace(telemetry.QueryTrace{
			ID: q.ID, Arrival: q.Arrival, Worker: lw.id,
			Error:   "kv-oversize",
			TraceID: simTraceID(q.ID), Process: "sim",
			Spans: []telemetry.Span{{Stage: telemetry.StageShed}},
		})
	}
}

// startStep runs one step boundary on the worker at time now: consult the
// selector, drain or switch the serving model, admit waiting queries under
// the KV reservation cap, compose the step decode-first, and schedule its
// completion.
func (e *LLMEngine) startStep(lw *llmWorker, now float64) {
	if len(lw.waiting) == 0 && len(lw.running) == 0 {
		lw.busy = false
		lw.stepEnd = math.Inf(1)
		return
	}
	if e.Selector != nil {
		e.maybeSwitch(lw, now)
	}
	m := e.models.Models[lw.model]
	cap := m.KVCapTokens

	if !lw.draining {
		for len(lw.waiting) > 0 && len(lw.running) < m.MaxSeqs {
			q := lw.waiting[0]
			need := q.Tokens()
			if lw.kvReserved+need > cap {
				if len(lw.running) == 0 && lw.kvReserved == 0 {
					// Can never fit this model's cache even empty: reject
					// rather than deadlock the queue head.
					lw.waiting = lw.waiting[1:]
					lw.outTok -= need
					e.drop(lw, q)
					continue
				}
				break // FIFO admission: no head-of-line bypass
			}
			lw.kvReserved += need
			lw.running = append(lw.running, &llmSeq{
				q: q, admitAt: now,
				prefillLeft: q.Prefill, decodeLeft: q.Decode,
				reserve: need,
			})
			lw.waiting = lw.waiting[1:]
		}
	}
	if len(lw.running) == 0 {
		lw.busy = false
		lw.stepEnd = math.Inf(1)
		return
	}

	// Compose the step: one decode token per eligible sequence first, then
	// prefill chunks fill the remaining budget.
	budget := m.StepBudget()
	p, d := 0, 0
	for _, s := range lw.running {
		s.decodeScheduled = false
		s.prefillChunk = 0
		if s.prefillLeft == 0 && s.decodeLeft > 0 && d < budget {
			s.decodeScheduled = true
			d++
		}
	}
	for _, s := range lw.running {
		if s.prefillLeft > 0 && p+d < budget {
			chunk := min(s.prefillLeft, budget-p-d)
			s.prefillChunk = chunk
			p += chunk
		}
	}

	kv := float64(lw.kvUsed) / float64(cap)
	tau := m.StepTime(p, d, kv)
	lw.busy = true
	lw.stepEnd = now + tau
	e.metrics.Steps++
	e.metrics.PrefillTokens += int64(p)
	e.metrics.DecodeTokens += int64(d)
	if e.tel != nil {
		e.tel.step.Observe(tau)
		e.tel.steps.With(m.Name).Inc()
		e.tel.prefillTokens.Add(float64(p))
		e.tel.decodeTokens.Add(float64(d))
	}
}

// maybeSwitch applies the selector's decision: an immediate switch when the
// running batch is empty, otherwise drain mode (no admissions until the
// batch empties, then switch).
func (e *LLMEngine) maybeSwitch(lw *llmWorker, now float64) {
	head, ok := lw.headArrival()
	if !ok {
		return
	}
	m := e.models.Models[lw.model]
	kv := float64(lw.kvUsed) / float64(m.KVCapTokens)
	queued := len(lw.waiting) + len(lw.running)
	desired := e.Selector.SelectModel(queued, lw.outTok, kv, head+e.SLO-now)
	if desired < 0 || desired >= e.models.Len() || desired == lw.model {
		lw.draining = false
		return
	}
	if len(lw.running) == 0 {
		lw.model = desired
		lw.draining = false
		e.metrics.ModelSwitches++
		if e.tel != nil {
			e.tel.switches.Inc()
		}
		return
	}
	lw.draining = true
}

// headArrival returns the oldest arrival time across waiting and running.
func (lw *llmWorker) headArrival() (float64, bool) {
	t, ok := math.Inf(1), false
	if len(lw.running) > 0 {
		t, ok = lw.running[0].q.Arrival, true
	}
	if len(lw.waiting) > 0 && lw.waiting[0].Arrival < t {
		t, ok = lw.waiting[0].Arrival, true
	}
	return t, ok
}

// completeStep lands the step's scheduled tokens at time end: prefill
// chunks enter the KV cache (a finishing prefill emits the first token),
// decode tokens advance their sequences, and finished sequences release
// their reservations and complete.
func (e *LLMEngine) completeStep(lw *llmWorker, end float64) {
	m := e.models.Models[lw.model]
	cap := m.KVCapTokens
	keep := lw.running[:0]
	for _, s := range lw.running {
		if s.prefillChunk > 0 {
			lw.kvUsed += s.prefillChunk
			s.kvHeld += s.prefillChunk
			s.prefillLeft -= s.prefillChunk
			lw.outTok -= s.prefillChunk
			s.prefillChunk = 0
			if s.prefillLeft == 0 {
				// Prefill finished: the step's last forward pass emitted the
				// first output token.
				s.decodeLeft--
				s.kvHeld++
				lw.kvUsed++
				lw.outTok--
				s.firstTokenAt = end
				s.lastTokenAt = end
				e.observeTTFT(end - s.q.Arrival)
			}
		} else if s.decodeScheduled {
			s.decodeScheduled = false
			s.decodeLeft--
			s.kvHeld++
			lw.kvUsed++
			lw.outTok--
			e.observeTBT(end - s.lastTokenAt)
			s.lastTokenAt = end
		}
		if s.prefillLeft == 0 && s.decodeLeft == 0 {
			if r := float64(lw.kvUsed) / float64(cap); r > e.metrics.PeakKVUsage {
				e.metrics.PeakKVUsage = r
			}
			lw.kvUsed -= s.kvHeld
			lw.kvReserved -= s.reserve
			e.complete(lw, s, m, end)
		} else {
			keep = append(keep, s)
		}
	}
	lw.running = keep
	if r := float64(lw.kvUsed) / float64(cap); r > e.metrics.PeakKVUsage {
		e.metrics.PeakKVUsage = r
	}
	if e.tel != nil {
		e.tel.kv[lw.id].Set(float64(lw.kvUsed) / float64(cap))
	}
}

func (e *LLMEngine) observeTTFT(t float64) {
	e.ttftHist.Observe(t)
	if e.CollectLatencies {
		e.metrics.TTFTs = append(e.metrics.TTFTs, t)
	}
	if e.tel != nil {
		e.tel.ttft.Observe(t)
	}
}

func (e *LLMEngine) observeTBT(t float64) {
	e.tbtHist.Observe(t)
	if e.CollectLatencies {
		e.metrics.TBTs = append(e.metrics.TBTs, t)
	}
	if e.tel != nil {
		e.tel.tbt.Observe(t)
	}
}

// complete records one finished query.
func (e *LLMEngine) complete(lw *llmWorker, s *llmSeq, m llm.StepModel, end float64) {
	lat := end - s.q.Arrival
	e.metrics.Served++
	e.latHist.Observe(lat)
	if e.CollectLatencies {
		e.metrics.Latencies = append(e.metrics.Latencies, lat)
	}
	violated := lat > e.SLO+1e-12
	if violated {
		e.metrics.Violations++
	} else {
		e.metrics.SatAccSum += m.Accuracy
	}
	e.metrics.ModelCounts[m.Name]++
	if e.tel != nil {
		e.tel.queries.Inc()
		if violated {
			e.tel.violations.Inc()
		} else {
			e.tel.satAcc.Add(m.Accuracy)
		}
		e.tel.modelQueries.With(m.Name).Inc()
		if e.tracing() {
			e.tel.latency.ObserveExemplar(lat, simTraceID(s.q.ID))
		} else {
			e.tel.latency.Observe(lat)
		}
		e.tel.batchWait.Observe(s.admitAt - s.q.Arrival)
	}
	if e.tracing() {
		e.recordTrace(telemetry.QueryTrace{
			ID: s.q.ID, Arrival: s.q.Arrival, Worker: lw.id,
			Model: m.Name, Batch: len(lw.running) + 1,
			LatencyMS:   lat * 1000,
			DeadlineMet: !violated,
			TraceID:     simTraceID(s.q.ID), Process: "sim",
			Spans: []telemetry.Span{
				{Stage: telemetry.StageBatchWait, Seconds: s.admitAt - s.q.Arrival},
				{Stage: telemetry.StagePrefill, Seconds: s.firstTokenAt - s.admitAt},
				{Stage: telemetry.StageDecode, Seconds: end - s.firstTokenAt},
			},
		})
	}
}

// finish fills the percentile fields: exact when every observation was
// collected, histogram-approximated otherwise.
func (e *LLMEngine) finish() {
	e.metrics.Decisions = e.metrics.Steps
	pct := func(xs []float64, h *telemetry.Histogram) (p50, p95, p99 float64) {
		if e.CollectLatencies && len(xs) > 0 {
			return stats.Percentile(xs, 50), stats.Percentile(xs, 95), stats.Percentile(xs, 99)
		}
		return h.Quantile(50), h.Quantile(95), h.Quantile(99)
	}
	e.metrics.LatencyP50, e.metrics.LatencyP95, e.metrics.LatencyP99 = pct(e.metrics.Latencies, e.latHist)
	e.metrics.TTFTP50, e.metrics.TTFTP95, e.metrics.TTFTP99 = pct(e.metrics.TTFTs, e.ttftHist)
	e.metrics.TBTP50, e.metrics.TBTP95, e.metrics.TBTP99 = pct(e.metrics.TBTs, e.tbtHist)
}
