package trace

import (
	"math/rand"

	"ramsis/internal/dist"
)

// TokenEvent is one token-annotated query arrival for the LLM workload: a
// query arriving at T (seconds from trace start) with Prefill prompt tokens
// to ingest and Decode output tokens to generate.
type TokenEvent struct {
	T       float64
	Prefill int
	Decode  int
}

// AnnotateTokens attaches per-query token lengths to precomputed arrival
// times, drawing the prefill length from in and the decode length from out,
// deterministically for a seed. It is split from TokenArrivals so scenario
// builders (burst tests, serve replays) can annotate hand-built arrival
// streams.
func AnnotateTokens(arrivals []float64, seed int64, in, out dist.LengthSampler) []TokenEvent {
	rng := rand.New(rand.NewSource(seed))
	events := make([]TokenEvent, len(arrivals))
	for i, t := range arrivals {
		events[i] = TokenEvent{T: t, Prefill: in.SampleLen(rng), Decode: out.SampleLen(rng)}
	}
	return events
}

// TokenArrivals samples token-annotated query arrivals from the trace under
// Poisson inter-arrivals: arrival times come from PoissonArrivals, and each
// query draws its prompt and output token lengths from the class samplers.
// The length stream uses a seed derived from the arrival seed, so arrival
// times are identical to the untokenized PoissonArrivals stream for the
// same seed.
func TokenArrivals(t Trace, seed int64, in, out dist.LengthSampler) []TokenEvent {
	return AnnotateTokens(PoissonArrivals(t, seed), seed^0x746f6b656e, in, out)
}
