package mdp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// twoStateChain: state 0 has actions "stay" (reward 1) and "go" (reward 0,
// moves to 1); state 1 has only "stay" with reward 5. With any discount
// close to 1, the optimal policy leaves state 0.
func twoStateChain() *MDP {
	return &MDP{Actions: [][]Action{
		{
			{Label: 0, Reward: 1, Transitions: []Transition{{Next: 0, P: 1}}},
			{Label: 1, Reward: 0, Transitions: []Transition{{Next: 1, P: 1}}},
		},
		{
			{Label: 0, Reward: 5, Transitions: []Transition{{Next: 1, P: 1}}},
		},
	}}
}

func TestValidate(t *testing.T) {
	m := twoStateChain()
	if err := m.Validate(1e-9); err != nil {
		t.Fatalf("valid MDP rejected: %v", err)
	}
	bad := &MDP{Actions: [][]Action{{{Reward: 0, Transitions: []Transition{{Next: 0, P: 0.5}}}}}}
	if err := bad.Validate(1e-9); err == nil {
		t.Error("under-normalized transitions accepted")
	}
	bad2 := &MDP{Actions: [][]Action{{{Transitions: []Transition{{Next: 5, P: 1}}}}}}
	if err := bad2.Validate(1e-9); err == nil {
		t.Error("out-of-range successor accepted")
	}
	empty := &MDP{Actions: [][]Action{{}}}
	if err := empty.Validate(1e-9); err == nil {
		t.Error("state with no actions accepted")
	}
	if err := (&MDP{}).Validate(1e-9); err == nil {
		t.Error("empty MDP accepted")
	}
}

func TestNumTransitions(t *testing.T) {
	if got := twoStateChain().NumTransitions(); got != 3 {
		t.Errorf("NumTransitions = %d, want 3", got)
	}
}

func TestValueIterationOptimalPolicy(t *testing.T) {
	m := twoStateChain()
	res, err := ValueIteration(m, SolveOptions{Gamma: 0.9, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy[0] != 1 {
		t.Errorf("policy[0] = %d, want 1 (move to the high-reward state)", res.Policy[0])
	}
	// V(1) = 5 / (1 - 0.9) = 50; V(0) = 0 + 0.9*50 = 45.
	if math.Abs(res.Values[1]-50) > 1e-6 {
		t.Errorf("V(1) = %v, want 50", res.Values[1])
	}
	if math.Abs(res.Values[0]-45) > 1e-6 {
		t.Errorf("V(0) = %v, want 45", res.Values[0])
	}
}

func TestValueIterationRejectsBadGamma(t *testing.T) {
	m := twoStateChain()
	for _, g := range []float64{-0.5, 1.0, 2.0} {
		if _, err := ValueIteration(m, SolveOptions{Gamma: g}); err == nil {
			t.Errorf("gamma %v accepted", g)
		}
	}
}

func TestValueIterationParallelByteIdentical(t *testing.T) {
	// The partitioned sweep must be invisible: values and policies are
	// byte-identical for every worker count, on MDPs whose state count is
	// not a multiple of the partition count.
	rng := rand.New(rand.NewSource(7))
	for _, states := range []int{1, 2, 23, 157} {
		m := randomMDP(rng, states, 3, 5)
		base, err := ValueIteration(m, SolveOptions{Gamma: 0.95, Tol: 1e-10, Parallel: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 3, 8, 64} {
			got, err := ValueIteration(m, SolveOptions{Gamma: 0.95, Tol: 1e-10, Parallel: workers})
			if err != nil {
				t.Fatal(err)
			}
			if got.Iterations != base.Iterations {
				t.Errorf("states=%d workers=%d: %d iterations, serial took %d", states, workers, got.Iterations, base.Iterations)
			}
			for s := range base.Values {
				if math.Float64bits(got.Values[s]) != math.Float64bits(base.Values[s]) {
					t.Fatalf("states=%d workers=%d: V(%d) = %v differs from serial %v", states, workers, s, got.Values[s], base.Values[s])
				}
				if got.Policy[s] != base.Policy[s] {
					t.Fatalf("states=%d workers=%d: policy[%d] = %d differs from serial %d", states, workers, s, got.Policy[s], base.Policy[s])
				}
			}
		}
	}
}

func TestPolicyIterationMatchesValueIteration(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := randomMDP(rng, 25, 4, 6)
	vi, err := ValueIteration(m, SolveOptions{Gamma: 0.95, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	pi, err := PolicyIteration(m, SolveOptions{Gamma: 0.95, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	for s := range vi.Values {
		if math.Abs(vi.Values[s]-pi.Values[s]) > 1e-6 {
			t.Fatalf("state %d: VI value %v != PI value %v", s, vi.Values[s], pi.Values[s])
		}
	}
}

func TestPolicyEvaluationFixedPoint(t *testing.T) {
	m := twoStateChain()
	// Evaluate the suboptimal stay-policy.
	v, err := PolicyEvaluation(m, Policy{0, 0}, SolveOptions{Gamma: 0.9, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	// V(0) = 1/(1-0.9) = 10.
	if math.Abs(v[0]-10) > 1e-6 {
		t.Errorf("V(0) = %v, want 10", v[0])
	}
	if _, err := PolicyEvaluation(m, Policy{0}, SolveOptions{}); err == nil {
		t.Error("wrong policy length accepted")
	}
}

func TestValueIterationValuesAreOptimalProperty(t *testing.T) {
	// Property: on random MDPs, the VI value function satisfies the Bellman
	// optimality equation and dominates the value of a random policy.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomMDP(rng, 12, 3, 4)
		res, err := ValueIteration(m, SolveOptions{Gamma: 0.9, Tol: 1e-12})
		if err != nil {
			return false
		}
		// Bellman residual check.
		for s := range m.Actions {
			best := math.Inf(-1)
			for ai := range m.Actions[s] {
				a := &m.Actions[s][ai]
				q := a.Reward
				for _, tr := range a.Transitions {
					q += 0.9 * tr.P * res.Values[tr.Next]
				}
				best = math.Max(best, q)
			}
			if math.Abs(best-res.Values[s]) > 1e-6 {
				return false
			}
		}
		// Dominance over a random policy.
		pol := make(Policy, len(m.Actions))
		for s := range pol {
			pol[s] = rng.Intn(len(m.Actions[s]))
		}
		v, err := PolicyEvaluation(m, pol, SolveOptions{Gamma: 0.9, Tol: 1e-12})
		if err != nil {
			return false
		}
		for s := range v {
			if v[s] > res.Values[s]+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestStationaryDistribution(t *testing.T) {
	// Two-state chain with P(0->1)=0.3, P(1->0)=0.6: stationary = (2/3, 1/3).
	m := &MDP{Actions: [][]Action{
		{{Transitions: []Transition{{Next: 0, P: 0.7}, {Next: 1, P: 0.3}}}},
		{{Transitions: []Transition{{Next: 0, P: 0.6}, {Next: 1, P: 0.4}}}},
	}}
	pi, err := StationaryDistribution(m, Policy{0, 0}, 1e-14, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pi[0]-2.0/3) > 1e-8 || math.Abs(pi[1]-1.0/3) > 1e-8 {
		t.Errorf("stationary = %v, want [2/3, 1/3]", pi)
	}
}

func TestStationaryDistributionPeriodicChain(t *testing.T) {
	// A strictly periodic two-cycle: the lazy iteration must still converge
	// to (1/2, 1/2).
	m := &MDP{Actions: [][]Action{
		{{Transitions: []Transition{{Next: 1, P: 1}}}},
		{{Transitions: []Transition{{Next: 0, P: 1}}}},
	}}
	pi, err := StationaryDistribution(m, Policy{0, 0}, 1e-14, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pi[0]-0.5) > 1e-8 {
		t.Errorf("stationary = %v, want [0.5, 0.5]", pi)
	}
}

func TestStationaryDistributionSumsToOneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomMDP(rng, 15, 2, 5)
		pol := make(Policy, len(m.Actions))
		pi, err := StationaryDistribution(m, pol, 1e-12, 0)
		if err != nil {
			return false
		}
		sum := 0.0
		for _, p := range pi {
			if p < -1e-12 {
				return false
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			return false
		}
		// Fixed point: pi P = pi.
		next := make([]float64, len(pi))
		for s := range m.Actions {
			for _, tr := range m.Actions[s][pol[s]].Transitions {
				next[tr.Next] += pi[s] * tr.P
			}
		}
		for i := range next {
			if math.Abs(next[i]-pi[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// randomMDP builds a random ergodic MDP: every action's successor set
// includes all states with positive probability.
func randomMDP(rng *rand.Rand, states, actions, _ int) *MDP {
	m := &MDP{Actions: make([][]Action, states)}
	for s := 0; s < states; s++ {
		for a := 0; a < actions; a++ {
			ws := make([]float64, states)
			sum := 0.0
			for i := range ws {
				ws[i] = rng.Float64() + 0.01
				sum += ws[i]
			}
			act := Action{Label: a, Reward: rng.Float64()}
			for i, w := range ws {
				act.Transitions = append(act.Transitions, Transition{Next: int32(i), P: w / sum})
			}
			m.Actions[s] = append(m.Actions[s], act)
		}
	}
	return m
}
