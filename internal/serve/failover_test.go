package serve

import (
	"context"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"ramsis/internal/profile"
	"ramsis/internal/sim"
)

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, d time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return cond()
}

// fireQueries sends n paced live queries and waits for all responses.
func fireQueries(t *testing.T, url string, n int, pace time.Duration) {
	t.Helper()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(url+"/query", "application/json", strings.NewReader(`{}`))
			if err == nil {
				resp.Body.Close()
			}
		}()
		time.Sleep(pace)
	}
	wg.Wait()
}

func fixedSelector(model string) SelectFunc {
	return func(_, _ float64, n int, _ float64) (string, int) { return model, n }
}

// TestFrontendRoutesAroundDeadWorker kills 1 of 3 workers mid-run and
// checks the tentpole failover behaviour: the health tracker detects the
// death, the balancer routes around it (zero dispatches to the dead worker
// after detection), failover rescues the batches caught in the detection
// window, and the overall violation rate stays within 2x a healthy
// cluster's on the same workload.
func TestFrontendRoutesAroundDeadWorker(t *testing.T) {
	const timeScale = 10.0
	const slo = 0.150
	const pace = 8 * time.Millisecond
	const total = 120 // 40 before the kill, 40 around detection, 40 after

	run := func(kill bool) (StatsResponse, *Frontend, func()) {
		urls := make([]string, 3)
		workers := make([]*Worker, 3)
		for i := range urls {
			workers[i] = NewWorker(profile.ImageSet(), sim.Deterministic{}, timeScale, int64(i+1))
			if err := workers[i].Start(); err != nil {
				t.Fatal(err)
			}
			urls[i] = workers[i].URL()
		}
		f := &Frontend{
			Profiles:       profile.ImageSet(),
			SLO:            slo,
			TimeScale:      timeScale,
			Workers:        urls,
			Select:         fixedSelector("shufflenet_v2_x0_5"),
			HealthInterval: 10 * time.Millisecond,
		}
		if err := f.Start(); err != nil {
			t.Fatal(err)
		}
		stop := func() {
			_ = f.Stop()
			for _, w := range workers {
				_ = w.Stop()
			}
		}

		fireQueries(t, f.URL(), total/3, pace)
		if kill {
			_ = workers[1].Stop()
		}
		fireQueries(t, f.URL(), total/3, pace)

		if kill {
			// The tracker must notice the death (failed dispatches and
			// probes both feed it).
			if !waitUntil(t, 2*time.Second, func() bool { return !f.Health.IsHealthy(1) }) {
				t.Fatal("dead worker never marked unhealthy")
			}
			// Let any batch already queued to the dead worker drain through
			// failover before snapshotting its dispatch counter. The drain
			// time is load-dependent (several fold slower under the race
			// detector), so wait for the counter to go quiet instead of
			// sleeping a fixed interval.
			before := f.Stats().WorkerDispatches[1]
			quietSince := time.Now()
			for end := time.Now().Add(5 * time.Second); time.Now().Before(end); {
				if now := f.Stats().WorkerDispatches[1]; now != before {
					before = now
					quietSince = time.Now()
				} else if time.Since(quietSince) >= 300*time.Millisecond {
					break
				}
				time.Sleep(10 * time.Millisecond)
			}
			fireQueries(t, f.URL(), total/3, pace)
			if after := f.Stats().WorkerDispatches[1]; after != before {
				t.Errorf("dead worker got %d dispatches after detection", after-before)
			}
		} else {
			fireQueries(t, f.URL(), total/3, pace)
		}
		return f.Stats(), f, stop
	}

	healthy, _, stopHealthy := run(false)
	defer stopHealthy()
	killed, f, stopKilled := run(true)
	defer stopKilled()

	if killed.Served != total {
		t.Fatalf("killed run served %d of %d", killed.Served, total)
	}
	if h := killed.WorkerHealthy; h[0] != true || h[1] != false || h[2] != true {
		t.Errorf("health mask %v, want [true false true]", h)
	}
	// Failover should rescue nearly every batch caught in the detection
	// window: a connection-refused dispatch fails in microseconds and the
	// retry lands on a live worker well inside the SLO. Allow a small grace
	// on top of the 2x bound for batches mid-flight at the kill instant.
	grace := 0.05
	if killed.ViolationRate > 2*healthy.ViolationRate+grace {
		t.Errorf("killed-run violation rate %.4f exceeds 2x healthy rate %.4f (+%.2f grace)",
			killed.ViolationRate, healthy.ViolationRate, grace)
	}
	if killed.FailedDispatches > total/10 {
		t.Errorf("%d of %d queries lost to failed dispatches despite failover",
			killed.FailedDispatches, total)
	}
	_ = f
}

// TestFrontendClientDisconnect covers the req.Context().Done() branch: a
// client that gives up mid-inference must not wedge the worker loop, leak
// the dispatch goroutine (the response channel is buffered), or lose the
// query from the metrics.
func TestFrontendClientDisconnect(t *testing.T) {
	urls := startWorkers(t, 1, sim.Deterministic{}, 1)
	f := &Frontend{
		Profiles:  profile.ImageSet(),
		SLO:       0.5,
		TimeScale: 1,
		Workers:   urls,
		// resnet50 batch-1 inference holds the request long enough to
		// cancel mid-flight at TimeScale 1.
		Select: fixedSelector("resnet50"),
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	defer f.Stop()
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(15 * time.Millisecond)
		cancel()
	}()
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, f.URL()+"/query", strings.NewReader(`{}`))
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
		t.Fatal("expected the canceled query to fail client-side")
	}

	// The batch still completes and records metrics.
	if !waitUntil(t, 5*time.Second, func() bool { return f.Stats().Served == 1 }) {
		t.Fatalf("abandoned query never recorded: %+v", f.Stats())
	}
	// The worker loop must still serve subsequent queries.
	resp, err := http.Post(f.URL()+"/query", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := f.Stats().Served; got != 2 {
		t.Errorf("served %d after follow-up query, want 2", got)
	}

	// No goroutine leak: the dispatch path writes to a buffered channel, so
	// once inferences drain the count returns to the pre-query level (plus
	// idle HTTP keep-alive slack).
	if !waitUntil(t, 5*time.Second, func() bool { return runtime.NumGoroutine() <= baseline+3 }) {
		t.Errorf("goroutines %d, baseline %d: leaked", runtime.NumGoroutine(), baseline)
	}
}
