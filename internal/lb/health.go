package lb

import (
	"net/http"
	"sync"
	"time"

	"ramsis/internal/telemetry"
)

// HealthConfig tunes a HealthTracker. Zero values take the defaults noted
// per field.
type HealthConfig struct {
	// Interval is the wall-clock period between probe rounds (default
	// 500 ms). Serving layers that compress modeled time divide their
	// modeled probe period by TimeScale before building the tracker so
	// detection latency compresses with the rest of the run.
	Interval time.Duration
	// Timeout bounds one probe request (default Interval, capped at 2 s).
	Timeout time.Duration
	// FailThreshold is the number of consecutive failures — probe or
	// dispatch-reported — after which a worker is marked unhealthy
	// (default 2).
	FailThreshold int
	// Path is the probe endpoint (default "/healthz").
	Path string
	// Telemetry, when set, records health-mark flips as
	// ramsis_health_transitions_total{to="healthy"|"unhealthy"} counters —
	// the time series that makes failover behaviour debuggable after the
	// fact.
	Telemetry *telemetry.Registry
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.Interval <= 0 {
		c.Interval = 500 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = c.Interval
		if c.Timeout > 2*time.Second {
			c.Timeout = 2 * time.Second
		}
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 2
	}
	if c.Path == "" {
		c.Path = "/healthz"
	}
	return c
}

// HealthTracker probes each worker's health endpoint on a fixed interval
// and maintains a healthy/unhealthy mark per worker: FailThreshold
// consecutive failures mark a worker unhealthy, and a single successful
// probe re-admits it. Dispatch paths feed their own observations in via
// ReportFailure/ReportSuccess so detection does not have to wait for the
// next probe round.
//
// All workers start healthy: a tracker that has not probed yet must not
// block traffic.
type HealthTracker struct {
	cfg    HealthConfig
	urls   []string
	client *http.Client

	mu      sync.Mutex
	fails   []int
	healthy []bool

	// transition counters; nil when no registry was configured.
	toUnhealthy *telemetry.Counter
	toHealthy   *telemetry.Counter

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewHealthTracker builds a tracker over the worker base URLs (not yet
// probing; call Start).
func NewHealthTracker(urls []string, cfg HealthConfig) *HealthTracker {
	cfg = cfg.withDefaults()
	t := &HealthTracker{
		cfg:     cfg,
		urls:    urls,
		client:  &http.Client{Timeout: cfg.Timeout},
		fails:   make([]int, len(urls)),
		healthy: make([]bool, len(urls)),
		stop:    make(chan struct{}),
	}
	for i := range t.healthy {
		t.healthy[i] = true
	}
	if cfg.Telemetry != nil {
		t.toUnhealthy = cfg.Telemetry.Counter(telemetry.MetricHealthTransitions, "to", "unhealthy")
		t.toHealthy = cfg.Telemetry.Counter(telemetry.MetricHealthTransitions, "to", "healthy")
	}
	return t
}

// Start launches one probe loop per worker.
func (t *HealthTracker) Start() {
	for w := range t.urls {
		t.wg.Add(1)
		go t.probeLoop(w)
	}
}

// Stop halts the probe loops and waits for them to exit.
func (t *HealthTracker) Stop() {
	close(t.stop)
	t.wg.Wait()
}

func (t *HealthTracker) probeLoop(w int) {
	defer t.wg.Done()
	ticker := time.NewTicker(t.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-t.stop:
			return
		case <-ticker.C:
			t.probe(w)
		}
	}
}

// probe performs one health check against worker w.
func (t *HealthTracker) probe(w int) {
	resp, err := t.client.Get(t.urls[w] + t.cfg.Path)
	ok := err == nil && resp.StatusCode >= 200 && resp.StatusCode < 300
	if err == nil {
		resp.Body.Close()
	}
	if ok {
		t.ReportSuccess(w)
	} else {
		t.ReportFailure(w)
	}
}

// ReportFailure records one failed interaction with worker w (probe
// failure or dispatch error); FailThreshold consecutive failures mark the
// worker unhealthy.
func (t *HealthTracker) ReportFailure(w int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.fails[w]++
	if t.fails[w] >= t.cfg.FailThreshold {
		if t.healthy[w] && t.toUnhealthy != nil {
			t.toUnhealthy.Inc()
		}
		t.healthy[w] = false
	}
}

// ReportSuccess records one successful interaction with worker w,
// re-admitting it immediately if it was marked unhealthy.
func (t *HealthTracker) ReportSuccess(w int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.fails[w] = 0
	if !t.healthy[w] && t.toHealthy != nil {
		t.toHealthy.Inc()
	}
	t.healthy[w] = true
}

// Healthy returns a snapshot of the per-worker health marks, sized and
// ordered like the URL list the tracker was built with.
func (t *HealthTracker) Healthy() []bool {
	return t.HealthyInto(nil)
}

// HealthyInto appends the per-worker health marks to dst (typically a
// recycled scratch slice), so hot routing paths can snapshot health
// without allocating.
func (t *HealthTracker) HealthyInto(dst []bool) []bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append(dst, t.healthy...)
}

// IsHealthy reports worker w's current mark.
func (t *HealthTracker) IsHealthy(w int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.healthy[w]
}
