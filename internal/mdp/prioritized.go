package mdp

import (
	"fmt"
	"math"
	"slices"
	"time"
)

// This file implements the fast-resolve kernels layered on the compiled CSR
// form: asynchronous prioritized value iteration (Gauss-Seidel in-place
// updates swept in Bellman-residual order) and optional float32 arithmetic
// for the online/adaptive route. Neither is byte-pinned against the slice
// solvers — the pinned equivalence contract covers the float64 Jacobi
// kernels only — but both converge to the same fixed point within Tol and
// extract the policy from a final full greedy sweep, so the argmaxes agree
// wherever the optimal action is separated by more than the tolerance.

// Method selects the Bellman sweep strategy for ValueIteration-family
// solves.
type Method int

const (
	// MethodJacobi is the synchronous double-buffered sweep (the default):
	// every state backs up from the previous iterate. The float64 Jacobi
	// path is byte-identical between the slice and compiled forms and
	// across Parallel settings — the pinned equivalence contract.
	MethodJacobi Method = iota
	// MethodPrioritized is asynchronous prioritized value iteration:
	// Gauss-Seidel in-place updates, swept in Bellman-residual order via a
	// bucketed priority queue over the CSR arrays. Warm-started re-solves
	// converge in far fewer backups than full Jacobi sweeps because only
	// the states whose residuals still exceed Tol are touched. The solve
	// is single-threaded and deterministic (Parallel is ignored); the
	// result matches the Jacobi fixed point within Tol but is not
	// byte-identical to it.
	MethodPrioritized
)

func (m Method) String() string {
	switch m {
	case MethodJacobi:
		return "jacobi"
	case MethodPrioritized:
		return "prioritized"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Solve runs value iteration with the configured Method and precision. It
// is the single entry point the fast-resolve path uses: MethodJacobi in
// float64 dispatches to the byte-pinned ValueIteration kernel; every other
// combination runs the generic kernels in this file.
func (c *Compiled) Solve(opts SolveOptions) (Result, error) {
	o := opts.withDefaults()
	if o.Gamma <= 0 || o.Gamma >= 1 {
		return Result{}, fmt.Errorf("mdp: gamma %v outside (0,1)", o.Gamma)
	}
	switch {
	case o.Float32:
		return solveGeneric[float32](c, o)
	case o.Method == MethodPrioritized:
		return solveGeneric[float64](c, o)
	default:
		return c.ValueIteration(opts)
	}
}

// float32Tol floors the stopping tolerance for float32 solves: the value
// scale is bounded by max|reward|/(1−γ), and residuals below a few ULPs of
// that scale are rounding noise that would stall convergence forever under
// the float64 default of 1e-9.
func (c *Compiled) float32Tol(tol, gamma float64) float64 {
	rmax := 0.0
	for _, r := range c.reward {
		if a := math.Abs(r); a > rmax {
			rmax = a
		}
	}
	// 2^-23 is the float32 epsilon; 8 ULPs of headroom absorbs the
	// accumulated rounding of long transition sums.
	floor := rmax / (1 - gamma) * (8.0 / (1 << 23))
	if tol < floor {
		tol = floor
	}
	return tol
}

// number is the element type of the generic solve kernels.
type number interface {
	~float32 | ~float64
}

// backupG is the generic Bellman backup: reward + Σ gp[k]·v[next[k]] in
// transition order, the T-precision twin of backup (same single-accumulator
// 4-way unroll, so the float64 instantiation rounds identically).
func backupG[T number](q T, gps []T, nxs []int32, v []T) T {
	nxs = nxs[:len(gps)]
	j := 0
	for ; j+4 <= len(gps); j += 4 {
		q += gps[j] * v[nxs[j]]
		q += gps[j+1] * v[nxs[j+1]]
		q += gps[j+2] * v[nxs[j+2]]
		q += gps[j+3] * v[nxs[j+3]]
	}
	for ; j < len(gps); j++ {
		q += gps[j] * v[nxs[j]]
	}
	return q
}

// kernel is the per-precision view of the compiled MDP: rewards and
// gamma-scaled probabilities converted once per solve.
type kernel[T number] struct {
	c      *Compiled
	reward []T
	gp     []T
	v      []T
}

func newKernel[T number](c *Compiled, gamma float64, initial []float64) *kernel[T] {
	k := &kernel[T]{
		c:      c,
		reward: make([]T, len(c.reward)),
		gp:     make([]T, len(c.prob)),
		v:      make([]T, c.n),
	}
	for i, r := range c.reward {
		k.reward[i] = T(r)
	}
	for i, p := range c.prob {
		k.gp[i] = T(gamma * p)
	}
	for i, x := range initial {
		k.v[i] = T(x)
	}
	return k
}

// best returns the greedy backup value and action index for state s against
// the current in-place value vector.
func (k *kernel[T]) best(s int) (T, int) {
	c := k.c
	best := T(math.Inf(-1))
	bestA := 0
	a0, a1 := c.actOff[s], c.actOff[s+1]
	for a := a0; a < a1; a++ {
		q := backupG(k.reward[a], k.gp[c.trOff[a]:c.trOff[a+1]], c.next[c.trOff[a]:c.trOff[a+1]], k.v)
		if q > best {
			best = q
			bestA = int(a - a0)
		}
	}
	return best, bestA
}

// values converts the in-place vector back to float64 for Result.Values (and
// warm-start donation to later solves).
func (k *kernel[T]) values() []float64 {
	out := make([]float64, len(k.v))
	for i, x := range k.v {
		out[i] = float64(x)
	}
	return out
}

// solveGeneric runs value iteration at precision T with the configured
// Method. Jacobi runs double-buffered full sweeps; prioritized alternates
// full Gauss-Seidel verification sweeps with residual-ordered drains of a
// bucketed priority queue. Iterations reports sweep-equivalents: full
// sweeps plus prioritized backups divided by the state count, so warm
// re-solves show the backup saving directly.
func solveGeneric[T number](c *Compiled, o SolveOptions) (Result, error) {
	if o.Float32 {
		o.Tol = c.float32Tol(o.Tol, o.Gamma)
	}
	n := c.n
	init := make([]float64, n)
	if err := o.initialValues(init); err != nil {
		return Result{}, err
	}
	k := newKernel[T](c, o.Gamma, init)
	pol := make(Policy, n)
	tol := T(o.Tol)

	if o.Method != MethodPrioritized {
		return jacobiGeneric(c, k, pol, o, tol)
	}

	preds := c.predecessors()
	pq := newBucketQueue(n, o.Tol)
	backups := 0
	sweeps := 0
	d := make([]T, n) // signed value change of the last sweep, per state
	sc := newAggScratch(n)

	for {
		if !o.Deadline.IsZero() && time.Now().After(o.Deadline) {
			return Result{Values: k.values(), Policy: pol, Iterations: sweeps + backups/n}, ErrDeadline
		}
		// One full Gauss-Seidel pass: every state is backed up in place
		// (extracting the greedy action), recording its signed change. A
		// pass over an already-converged vector — a warm start from the
		// exact fixed point — exits after this single sweep (the
		// zero-residual early exit).
		residual := T(0)
		active := 0
		for s := 0; s < n; s++ {
			q, bestA := k.best(s)
			dd := q - k.v[s]
			d[s] = dd
			if dd < 0 {
				dd = -dd
			}
			if dd > residual {
				residual = dd
			}
			if dd > tol {
				active++
			}
			k.v[s] = q
			pol[s] = bestA
		}
		sweeps++
		if residual < tol {
			break
		}
		if sweeps+backups/n >= o.MaxIter {
			break
		}
		if active*16 >= n {
			// Global phase: most of the space still moves each sweep, so
			// the error lives in the chain's slow modes (near-unit
			// eigenvectors of the policy chain), which plain sweeps damp
			// only at rate ≈ γ per pass. An adaptive-aggregation step
			// (Bertsekas–Castañón) cancels them wholesale: group states by
			// residual, solve the small aggregated system exactly, and add
			// the piecewise-constant correction — approximate policy
			// evaluation in one shot. The correction cannot change the
			// fixed point — convergence is still declared only by a full
			// sweep with residual below Tol.
			//
			// The linear error model needs the greedy policy's Bellman
			// residual against the *current* vector (the Gauss-Seidel pass
			// change mixes residuals of intermediate iterates and badly
			// overshoots), so run one cheap fixed-policy pass first.
			for s := 0; s < n; s++ {
				a := c.actOff[s] + int32(pol[s])
				q := backupG(k.reward[a], k.gp[c.trOff[a]:c.trOff[a+1]], c.next[c.trOff[a]:c.trOff[a+1]], k.v)
				d[s] = q - k.v[s]
			}
			aggCorrect(c, k, pol, d, o.Gamma, sc)
			continue
		}
		// Endgame: the residual is confined to a small active set, so
		// full sweeps waste n−active backups per pass. Seed the bucketed
		// priority queue with the predecessors of every state that still
		// moved, most-moved first.
		for s := 0; s < n; s++ {
			dd := d[s]
			if dd < 0 {
				dd = -dd
			}
			if dd > tol {
				pq.pushAll(preds.at(s), float64(dd))
			}
		}
		// Drain in residual order: each pop re-backs-up one state in
		// place; a change above Tol re-prioritizes its predecessors. The
		// round is budgeted at n backups — one sweep-equivalent — so a
		// slow-mixing local cluster can never cost more than the full
		// sweep it replaces; the next sweep then either confirms global
		// convergence or re-seeds the queue with whatever was left.
		for budget := n; budget > 0; budget-- {
			s, ok := pq.pop()
			if !ok {
				break
			}
			q, bestA := k.best(s)
			dd := q - k.v[s]
			if dd < 0 {
				dd = -dd
			}
			k.v[s] = q
			pol[s] = bestA
			backups++
			if dd > tol {
				pq.pushAll(preds.at(s), float64(dd))
			}
		}
	}
	return Result{Values: k.values(), Policy: pol, Iterations: sweeps + backups/n}, nil
}

// jacobiGeneric is the double-buffered synchronous sweep at precision T,
// structurally identical to the pinned float64 kernel (which float64 Jacobi
// solves keep using via ValueIteration).
func jacobiGeneric[T number](c *Compiled, k *kernel[T], pol Policy, o SolveOptions, tol T) (Result, error) {
	n := c.n
	next := make([]T, n)
	it := 0
	for ; it < o.MaxIter; it++ {
		if !o.Deadline.IsZero() && time.Now().After(o.Deadline) {
			return Result{Values: k.values(), Policy: pol, Iterations: it}, ErrDeadline
		}
		residual := T(0)
		for s := 0; s < n; s++ {
			q, bestA := k.best(s)
			d := q - k.v[s]
			if d < 0 {
				d = -d
			}
			if d > residual {
				residual = d
			}
			next[s] = q
			pol[s] = bestA
		}
		k.v, next = next, k.v
		if residual < tol {
			it++
			break
		}
	}
	return Result{Values: k.values(), Policy: pol, Iterations: it}, nil
}

// aggScratch holds the buffers of the adaptive-aggregation correction,
// allocated once per solve and reused across steps.
type aggScratch struct {
	ord  []int32   // states ordered by last-sweep change
	gid  []int32   // group id per state
	phat []float64 // m×m aggregated policy-chain transition matrix
	rhat []float64 // m: mean residual per group (becomes the correction)
	cnt  []float64 // m: states per group
	m    int
}

// Aggregate system size bounds. The group count scales as n/aggRatio,
// clamped to [aggMinGroups, aggMaxGroups]: large enough that states sharing
// a group have near-identical residuals (so the piecewise-constant error
// model fits — too few groups over a large space leaves slow modes the
// correction cannot represent and the solve degenerates to plain sweeps),
// small enough that the dense m³ elimination stays far below one Bellman
// sweep.
const (
	aggMinGroups = 64
	aggMaxGroups = 512
	aggRatio     = 64
)

func newAggScratch(n int) *aggScratch {
	m := n / aggRatio
	if m < aggMinGroups {
		m = aggMinGroups
	}
	if m > aggMaxGroups {
		m = aggMaxGroups
	}
	if m > n {
		m = n
	}
	return &aggScratch{
		ord:  make([]int32, n),
		gid:  make([]int32, n),
		phat: make([]float64, m*m),
		rhat: make([]float64, m),
		cnt:  make([]float64, m),
		m:    m,
	}
}

// aggCorrect applies one adaptive-aggregation step (Bertsekas–Castañón):
// states are grouped into m quantile buckets of their last sweep's signed
// value change, the greedy policy's chain is aggregated into an m×m matrix
// P̂, and the exact solve of (I − γP̂)·y = r̂ yields the geometric tail of
// the residual under a piecewise-constant error model. Adding y[group(s)]
// to every state cancels the chain's slow error modes — the near-unit
// eigenvectors that are nearly constant within quantile groups — which
// plain sweeps damp only at rate γ per pass. The correction is a pure
// accelerator: it moves the iterate, never the fixed point, and the solver
// still terminates only on a clean full sweep.
func aggCorrect[T number](c *Compiled, k *kernel[T], pol Policy, d []T, gamma float64, sc *aggScratch) {
	n, m := c.n, sc.m
	for i := range sc.ord {
		sc.ord[i] = int32(i)
	}
	slices.SortFunc(sc.ord, func(a, b int32) int {
		switch {
		case d[a] < d[b]:
			return -1
		case d[a] > d[b]:
			return 1
		}
		return 0
	})
	for i, s := range sc.ord {
		sc.gid[s] = int32(i * m / n)
	}
	for i := range sc.phat {
		sc.phat[i] = 0
	}
	for g := 0; g < m; g++ {
		sc.rhat[g], sc.cnt[g] = 0, 0
	}
	for s := 0; s < n; s++ {
		g := int(sc.gid[s])
		a := c.actOff[s] + int32(pol[s])
		row := sc.phat[g*m : g*m+m]
		for t := c.trOff[a]; t < c.trOff[a+1]; t++ {
			row[sc.gid[c.next[t]]] += c.prob[t]
		}
		sc.rhat[g] += float64(d[s])
		sc.cnt[g]++
	}
	// Form A = I − γ·P̂ and b = r̂ (group means). Rows of P̂ sum to 1, so A
	// is strictly diagonally dominant with margin 1−γ and Gaussian
	// elimination needs no pivoting.
	for g := 0; g < m; g++ {
		inv := 1 / sc.cnt[g]
		row := sc.phat[g*m : g*m+m]
		for j := range row {
			row[j] *= -gamma * inv
		}
		row[g]++
		sc.rhat[g] *= inv
	}
	A, b := sc.phat, sc.rhat
	for p := 0; p < m; p++ {
		piv := A[p*m+p]
		for r := p + 1; r < m; r++ {
			f := A[r*m+p] / piv
			if f == 0 {
				continue
			}
			for j := p + 1; j < m; j++ {
				A[r*m+j] -= f * A[p*m+j]
			}
			b[r] -= f * b[p]
		}
	}
	for p := m - 1; p >= 0; p-- {
		sum := b[p]
		for j := p + 1; j < m; j++ {
			sum -= A[p*m+j] * b[j]
		}
		b[p] = sum / A[p*m+p]
	}
	for s := 0; s < n; s++ {
		k.v[s] += T(b[sc.gid[s]])
	}
}

// predCSR is the reverse adjacency of the compiled MDP: predecessors of
// state s — every state with at least one action transitioning into s —
// occupy [off[s], off[s+1]) of list. Duplicate (pred, succ) pairs arising
// from multiple actions or transitions are collapsed, so a residual bump
// enqueues each predecessor once.
type predCSR struct {
	off  []int32
	list []int32
}

func (p *predCSR) at(s int) []int32 { return p.list[p.off[s]:p.off[s+1]] }

// predecessors builds (and memoizes) the reverse CSR. The build is
// O(transitions), about the cost of one Bellman sweep, paid once per
// Compiled.
func (c *Compiled) predecessors() *predCSR {
	c.predOnce.Do(func() {
		n := c.n
		counts := make([]int32, n+1)
		// mark[succ] records the last predecessor that noted succ; states
		// iterate in increasing order, so the check dedups (pred, succ)
		// pairs exactly across all of a state's actions and transitions.
		mark := make([]int32, n)
		for i := range mark {
			mark[i] = -1
		}
		countPass := func(record func(pred, succ int32)) {
			for s := 0; s < n; s++ {
				a0, a1 := c.actOff[s], c.actOff[s+1]
				t0, t1 := c.trOff[a0], c.trOff[a1]
				for t := t0; t < t1; t++ {
					succ := c.next[t]
					if mark[succ] == int32(s) {
						continue
					}
					mark[succ] = int32(s)
					record(int32(s), succ)
				}
			}
		}
		countPass(func(_, succ int32) { counts[succ+1]++ })
		for i := 0; i < n; i++ {
			counts[i+1] += counts[i]
		}
		list := make([]int32, counts[n])
		fill := make([]int32, n)
		copy(fill, counts[:n])
		for i := range mark {
			mark[i] = -1
		}
		countPass(func(pred, succ int32) {
			list[fill[succ]] = pred
			fill[succ]++
		})
		c.pred = &predCSR{off: counts, list: list}
	})
	return c.pred
}

// bucketQueue is an approximate max-priority queue over states keyed by
// Bellman residual, bucketed by binary exponent of residual/tol: bucket b
// holds residuals in [tol·2^b, tol·2^(b+1)). Push is O(1); pop scans down
// from the highest non-empty bucket. A state is queued at most once at its
// highest pending priority — re-pushing at a lower priority is a no-op, and
// a stale entry left in a lower bucket after an upgrade is skipped on pop.
type bucketQueue struct {
	tol     float64
	buckets [][]int32
	at      []int16 // current bucket per state, -1 when not queued
	top     int     // highest possibly non-empty bucket
}

const numBuckets = 64

func newBucketQueue(n int, tol float64) *bucketQueue {
	q := &bucketQueue{
		tol:     tol,
		buckets: make([][]int32, numBuckets),
		at:      make([]int16, n),
		top:     -1,
	}
	for i := range q.at {
		q.at[i] = -1
	}
	return q
}

// bucketOf maps a residual to its bucket index, clamped to the top bucket
// for huge residuals; residuals at or below tol do not queue.
func (q *bucketQueue) bucketOf(pri float64) int {
	if !(pri > q.tol) {
		return -1
	}
	b := math.Ilogb(pri / q.tol)
	if b < 0 {
		b = 0
	}
	if b >= numBuckets {
		b = numBuckets - 1
	}
	return b
}

func (q *bucketQueue) push(s int32, pri float64) {
	b := q.bucketOf(pri)
	if b < 0 || int(q.at[s]) >= b {
		return
	}
	q.at[s] = int16(b)
	q.buckets[b] = append(q.buckets[b], s)
	if b > q.top {
		q.top = b
	}
}

func (q *bucketQueue) pushAll(states []int32, pri float64) {
	for _, s := range states {
		q.push(s, pri)
	}
}

func (q *bucketQueue) pop() (int, bool) {
	for q.top >= 0 {
		b := q.buckets[q.top]
		if len(b) == 0 {
			q.top--
			continue
		}
		s := b[len(b)-1]
		q.buckets[q.top] = b[:len(b)-1]
		if int(q.at[s]) != q.top {
			continue // stale entry: the state was upgraded and popped higher
		}
		q.at[s] = -1
		return int(s), true
	}
	return 0, false
}
