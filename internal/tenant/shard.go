package tenant

import (
	"fmt"
	"math/rand"
	"strconv"
	"sync"
)

// Sharder routes one tenant's query to a frontend shard. depths carries
// each shard's outstanding work (queued + in-flight) for load-aware
// strategies; affinity strategies may ignore it.
type Sharder interface {
	// Pick returns a shard index in [0, len(depths)).
	Pick(tenant string, depths []int) int
	// Name identifies the strategy for flags and metric labels.
	Name() string
}

// Rendezvous is highest-random-weight (HRW) consistent hashing: a tenant
// maps to the shard maximizing hash(tenant, shard), so all of a tenant's
// traffic lands on one shard (cache/monitor affinity) and adding or
// removing a shard remaps only 1/N of tenants — no ring, no virtual
// nodes, stdlib only.
type Rendezvous struct{}

// Pick returns the HRW winner for the tenant.
func (Rendezvous) Pick(tenant string, depths []int) int {
	best, bestH := 0, uint64(0)
	for i := range depths {
		h := hrwHash(tenant, i)
		if h > bestH {
			best, bestH = i, h
		}
	}
	return best
}

// Name identifies the strategy.
func (Rendezvous) Name() string { return "hash" }

// hrwHash is FNV-1a over tenant + "/" + shard index, finished with a
// splitmix64-style avalanche. The finalizer matters: raw FNV-1a's last
// step is one multiply, which nearly preserves ordering across inputs
// differing only in the final byte — without it the highest shard digit
// wins HRW for half of all tenants.
func hrwHash(tenant string, shard int) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(tenant); i++ {
		h ^= uint64(tenant[i])
		h *= prime64
	}
	h ^= '/'
	h *= prime64
	for _, c := range strconv.Itoa(shard) {
		h ^= uint64(c)
		h *= prime64
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// P2C picks two random shards and routes to the less loaded — the
// power-of-two-choices bound on max queue depth, trading tenant affinity
// for load balance (a hot tenant spreads across shards instead of
// saturating its hash home).
type P2C struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewP2C returns a seeded two-choice sharder.
func NewP2C(seed int64) *P2C { return &P2C{rng: rand.New(rand.NewSource(seed))} }

// Pick samples two shards and returns the shallower.
func (p *P2C) Pick(_ string, depths []int) int {
	n := len(depths)
	if n <= 1 {
		return 0
	}
	p.mu.Lock()
	a := p.rng.Intn(n)
	b := p.rng.Intn(n - 1)
	p.mu.Unlock()
	if b >= a {
		b++
	}
	if depths[b] < depths[a] {
		return b
	}
	return a
}

// Name identifies the strategy.
func (p *P2C) Name() string { return "p2c" }

// NewSharder builds a sharder by strategy name: "hash" (rendezvous,
// default) or "p2c".
func NewSharder(name string, seed int64) (Sharder, error) {
	switch name {
	case "", "hash", "rendezvous":
		return Rendezvous{}, nil
	case "p2c":
		return NewP2C(seed), nil
	default:
		return nil, fmt.Errorf("tenant: unknown shard strategy %q (want hash or p2c)", name)
	}
}
